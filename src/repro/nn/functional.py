"""Structured autograd operations: convolutions, pooling, padding, softmax.

These primitives complete the :mod:`repro.nn` substrate.  conv1d dispatches
per kernel tap to BLAS GEMMs on strided views (no im2col materialisation:
each tap is a ``(C_out, C_in) @ (C_in, L_out)`` product accumulated in fixed
tap order), which profiles 2-4x faster than the previous im2col ``einsum``
formulation on the channel counts the paper's architectures use.  conv2d
keeps the im2col ``einsum`` (its fused spatial window makes per-tap slices
non-contiguous, so GEMM would pay a copy per tap).  Backward passes scatter
gradients back with strided in-place adds.

Every op builds a replayable ``forward(out=None)`` closure (see
:mod:`repro.nn.tensor`): eager execution calls it once, the training tape
replays it with reused buffers — identical arithmetic either way.  That
includes the stochastic ops: :func:`dropout` and :func:`sampled_normal`
draw into closure-persistent buffers *from inside the closure*, so a
replayed epoch consumes the module's RNG stream exactly like an eager epoch
would (same draw order, same values) instead of replaying a stale constant,
and :func:`softmax` recomputes its max shift per replay rather than baking
it into the graph.
"""

from __future__ import annotations

import threading

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor, _into, _record, as_tensor

__all__ = [
    "pad1d",
    "pad2d",
    "conv1d",
    "conv2d",
    "max_pool1d",
    "max_pool2d",
    "upsample1d",
    "upsample2d",
    "softmax",
    "dropout",
    "sampled_normal",
    "stable_kernels",
    "stable_kernels_active",
]

# --------------------------------------------------------------------- #
# Shape-stable kernel mode.
#
# The default conv1d forward accumulates per-tap GEMMs whose BLAS inner
# kernels may round the last few output positions differently depending on
# the *length* of the input (tail-block handling).  That is invisible to
# training, but the receptive-field-bounded tail forwards of
# repro.core.scoring splice slice forwards into cached full forwards and
# promise bit-identical results — which requires every output position's
# arithmetic to be independent of how long the forwarded array happens to
# be.  `stable_kernels()` switches conv1d to a per-tap accumulation with a
# fixed non-BLAS reduction order (slower, still vectorised); serving paths
# enter it around their forwards, training never pays for it.
#
# The flag is thread-local (like grad mode in .tensor): every serving
# forward enters the context on the thread that runs it — including the
# threaded drain backend's workers, which each call the forward helper
# themselves — while a fit training concurrently on another thread keeps
# the default kernels.  The stable branch rounds differently (that is the
# point), so leaking it into a fit would make training results depend on
# drain timing and break fixed-seed determinism.

_STABLE_STATE = threading.local()


class stable_kernels:
    """Context manager: length-stable conv arithmetic (serving forwards).

    Re-entrant and per-thread."""

    def __enter__(self):
        _STABLE_STATE.depth = getattr(_STABLE_STATE, "depth", 0) + 1
        return self

    def __exit__(self, exc_type, exc, tb):
        _STABLE_STATE.depth -= 1
        return False


def stable_kernels_active():
    """Whether conv kernels are in length-stable mode on this thread."""
    return getattr(_STABLE_STATE, "depth", 0) > 0


def pad1d(x, padding):
    """Zero-pad the last axis of a ``(N, C, L)`` tensor by ``padding`` each side."""
    x = as_tensor(x)
    if padding == 0:
        return x
    n, c, length = x.data.shape

    def forward(out=None):
        # Hand-rolled instead of np.pad: this runs per conv call on the
        # serving hot path, where np.pad's argument normalisation dominates
        # small inputs.  On tape replay the reused buffer's padding columns
        # are already zero, so only the interior is rewritten.
        if out is None:
            out = np.zeros((n, c, length + 2 * padding))
        out[:, :, padding : padding + length] = x.data
        return out

    def backward(grad):
        if x.requires_grad:
            # View of the consumer's gradient: adopt, don't copy.
            x._accumulate_owned(grad[:, :, padding:-padding])

    out = Tensor._make(forward(), (x,), backward)
    _record(out, forward)
    return out


def pad2d(x, padding):
    """Zero-pad the last two axes of a ``(N, C, H, W)`` tensor."""
    x = as_tensor(x)
    if padding == 0:
        return x
    p = padding
    n, c, h, w = x.data.shape

    def forward(out=None):
        if out is None:
            out = np.zeros((n, c, h + 2 * p, w + 2 * p))
        out[:, :, p : p + h, p : p + w] = x.data
        return out

    def backward(grad):
        if x.requires_grad:
            x._accumulate_owned(grad[:, :, p:-p, p:-p])

    out = Tensor._make(forward(), (x,), backward)
    _record(out, forward)
    return out


def conv1d(x, weight, bias=None, padding=0):
    """1D convolution (stride 1).

    Parameters
    ----------
    x: Tensor ``(N, C_in, L)``
    weight: Tensor ``(C_out, C_in, K)``
    bias: optional Tensor ``(C_out,)``
    padding: symmetric zero padding on the length axis.
    """
    x = pad1d(as_tensor(x), padding)
    weight = as_tensor(weight)
    if bias is not None:
        bias = as_tensor(bias)
    n, c_in, length = x.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError("channel mismatch: %d vs %d" % (c_in, c_in_w))
    if length < k:
        raise ValueError("input length %d shorter than kernel %d" % (length, k))
    l_out = length - k + 1
    stable = stable_kernels_active()
    scratch = [None]

    def forward(out=None):
        if stable:
            # Fixed-order accumulation: one non-BLAS kernel per tap, summed
            # tap-by-tap.  Every output position sees the exact same
            # floating-point operation sequence regardless of L, which is
            # what lets a tail-slice forward reproduce a full forward
            # bit-for-bit.  Routing the per-tap GEMMs here instead is NOT
            # an option: BLAS tail-block handling makes
            # np.matmul(W, X[:, :L1]) differ in its last few columns from
            # np.matmul(W, X)[:, :L1] (measured at the architectures'
            # shapes), so stable mode keeps einsum's per-position channel
            # dot and only streamlines the accumulation — out=/in-place
            # adds instead of a fresh array per tap, and a broadcast
            # multiply for the degenerate single-channel case (the
            # one-term channel "sum" is just a product), ~1.2-3x faster
            # and bit-equal to the previous tap-by-tap sum.
            if out is None:
                out = np.empty((n, c_out, l_out))
            if c_in == 1:
                np.multiply(x.data[:, :, 0:l_out],
                            weight.data[:, 0, 0][None, :, None], out=out)
            else:
                np.einsum("fc,ncl->nfl", weight.data[:, :, 0],
                          x.data[:, :, 0:l_out], optimize=False, out=out)
            tmp = scratch[0]
            if k > 1 and (tmp is None or tmp.shape != out.shape):
                tmp = scratch[0] = np.empty_like(out)
            for tap in range(1, k):
                if c_in == 1:
                    np.multiply(x.data[:, :, tap : tap + l_out],
                                weight.data[:, 0, tap][None, :, None],
                                out=tmp)
                else:
                    np.einsum("fc,ncl->nfl", weight.data[:, :, tap],
                              x.data[:, :, tap : tap + l_out],
                              optimize=False, out=tmp)
                np.add(out, tmp, out=out)
            if bias is not None:
                out += bias.data[None, :, None]
            return out
        if c_in == 1:
            # Degenerate GEMM (inner dimension 1) is an outer product BLAS
            # handles poorly; the im2col einsum's broadcast path is ~7x
            # faster for single-channel inputs.
            cols = sliding_window_view(x.data, k, axis=2)
            result = np.einsum(  # repro: lint-ok[einsum-order] eager-only branch: stable=True takes the fixed-order tap loop above, so this never runs under stable_kernels()
                "nclk,fck->nfl", cols, weight.data,
                optimize=True, out=out)
            if bias is not None:
                result += bias.data[None, :, None]
            return result
        # Per-tap GEMM: (C_out, C_in) @ (C_in, L_out) on strided views of x
        # (BLAS handles the leading-dimension stride, no im2col copy),
        # accumulated in fixed tap order.
        if out is None:
            result = np.matmul(weight.data[:, :, 0], x.data[:, :, 0:l_out])
        else:
            result = np.matmul(weight.data[:, :, 0], x.data[:, :, 0:l_out],
                               out=out)
        tmp = scratch[0]
        if tmp is None or tmp.shape != result.shape:
            tmp = scratch[0] = np.empty_like(result)
        for tap in range(1, k):
            np.matmul(weight.data[:, :, tap], x.data[:, :, tap : tap + l_out],
                      out=tmp)
            np.add(result, tmp, out=result)
        if bias is not None:
            result += bias.data[None, :, None]
        return result

    parents = (x, weight) if bias is None else (x, weight, bias)
    gx_buf = [None]
    gtmp_buf = [None]

    def backward(grad):
        # grad: (N, C_out, L_out)
        if weight.requires_grad:
            # Per-tap GEMM: (C_out, L_out) @ (L_out, C_in) per tap — no
            # sliding-window materialisation (the previous im2col einsum
            # recomputed the window view here on every backward).
            gw = np.empty_like(weight.data)
            for tap in range(k):
                xt = x.data[:, :, tap : tap + l_out]
                if n > 1:
                    np.einsum(  # repro: lint-ok[einsum-order] backward-only: stable_kernels() bit-equality is a forward contract, gradients tolerate order drift
                        "nfl,ncl->fc", grad, xt, optimize=True,
                        out=gw[:, :, tap])
                else:
                    np.matmul(grad[0], xt[0].T, out=gw[:, :, tap])
            weight._accumulate_owned(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            gx = gx_buf[0]
            if gx is None or gx.shape != x.data.shape:
                gx = gx_buf[0] = np.zeros_like(x.data)
            else:
                gx.fill(0.0)
            tmp = gtmp_buf[0]
            if tmp is None or tmp.shape != (n, c_in, l_out):
                tmp = gtmp_buf[0] = np.empty((n, c_in, l_out))
            # Scatter each kernel tap back onto the input axis:
            # (C_in, C_out) @ (C_out, L_out) added into a strided slice.
            for tap in range(k):
                np.matmul(weight.data[:, :, tap].T, grad, out=tmp)
                target = gx[:, :, tap : tap + l_out]
                np.add(target, tmp, out=target)
            # gx is this closure's scratch: untouched until the op's next
            # backward, so the parent can alias it instead of copying.
            x._accumulate_owned(gx)

    out = Tensor._make(forward(), parents, backward)
    _record(out, forward)
    return out


def conv2d(x, weight, bias=None, padding=0):
    """2D convolution (stride 1).

    Parameters
    ----------
    x: Tensor ``(N, C_in, H, W)``
    weight: Tensor ``(C_out, C_in, KH, KW)``
    """
    x = pad2d(as_tensor(x), padding)
    weight = as_tensor(weight)
    if bias is not None:
        bias = as_tensor(bias)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError("channel mismatch: %d vs %d" % (c_in, c_in_w))
    if h < kh or w < kw:
        raise ValueError("input %s smaller than kernel %s" % ((h, w), (kh, kw)))
    h_out, w_out = h - kh + 1, w - kw + 1
    scratch = [None]

    def forward(out=None):
        # Per-tap batched GEMM, like conv1d: for each kernel offset (i, j),
        # (C_out, C_in) @ (C_in, W_out) batched over (N, H_out) row views —
        # BLAS takes the strided operands directly, so no im2col copy.
        # Profiles ~5x faster than the previous im2col einsum at the
        # lagged-matrix shapes RDAE trains on; tap order is fixed, so the
        # accumulation is deterministic.
        tmp = scratch[0]
        if tmp is None or tmp.shape != (n, h_out, c_out, w_out):
            tmp = scratch[0] = np.empty((n, h_out, c_out, w_out))
        if out is None:
            out = np.empty((n, c_out, h_out, w_out))
        result_rows = out.transpose(0, 2, 1, 3)  # (N, H_out, C_out, W_out) view
        first = True
        for i in range(kh):
            rows = x.data[:, :, i : i + h_out, :].transpose(0, 2, 1, 3)
            for j in range(kw):
                np.matmul(weight.data[:, :, i, j], rows[:, :, :, j : j + w_out],
                          out=tmp)
                if first:
                    result_rows[...] = tmp
                    first = False
                else:
                    np.add(result_rows, tmp, out=result_rows)
        if bias is not None:
            out += bias.data[None, :, None, None]
        return out

    parents = (x, weight) if bias is None else (x, weight, bias)
    gx_buf = [None]
    gscratch = [None]

    def backward(grad):
        if weight.requires_grad:
            gw = np.empty_like(weight.data)
            gflat = grad.reshape(n, c_out, h_out * w_out)
            for i in range(kh):
                for j in range(kw):
                    xsl = x.data[:, :, i : i + h_out, j : j + w_out]
                    xflat = xsl.reshape(n, c_in, h_out * w_out)
                    r = np.matmul(gflat, xflat.transpose(0, 2, 1))  # (N, F, C)
                    gw[:, :, i, j] = r.sum(axis=0) if n > 1 else r[0]
            weight._accumulate_owned(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            gx = gx_buf[0]
            if gx is None or gx.shape != x.data.shape:
                gx = gx_buf[0] = np.zeros_like(x.data)
            else:
                gx.fill(0.0)
            tmp = gscratch[0]
            if tmp is None or tmp.shape != (n, h_out, c_in, w_out):
                tmp = gscratch[0] = np.empty((n, h_out, c_in, w_out))
            grad_rows = grad.transpose(0, 2, 1, 3)  # (N, H_out, C_out, W_out)
            for i in range(kh):
                for j in range(kw):
                    np.matmul(weight.data[:, :, i, j].T, grad_rows, out=tmp)
                    target = gx[:, :, i : i + h_out, j : j + w_out]
                    target = target.transpose(0, 2, 1, 3)
                    np.add(target, tmp, out=target)
            x._accumulate_owned(gx)

    out = Tensor._make(forward(), parents, backward)
    _record(out, forward)
    return out


def max_pool1d(x, kernel=2):
    """Max pooling on ``(N, C, L)`` with stride == kernel.

    Trailing elements that do not fill a window are dropped, matching the
    usual floor-mode pooling semantics.
    """
    x = as_tensor(x)
    n, c, length = x.shape
    l_out = length // kernel
    saved = [None]

    def forward(out=None):
        trimmed = x.data[:, :, : l_out * kernel].reshape(n, c, l_out, kernel)
        saved[0] = arg = trimmed.argmax(axis=3)
        result = np.take_along_axis(trimmed, arg[..., None], axis=3)[..., 0]
        return _into(out, result)

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(x.data)
            view = gx[:, :, : l_out * kernel].reshape(n, c, l_out, kernel)
            np.put_along_axis(view, saved[0][..., None], grad[..., None], axis=3)
            x._accumulate_owned(gx)

    out = Tensor._make(forward(), (x,), backward)
    _record(out, forward)
    return out


def max_pool2d(x, kernel=2):
    """Max pooling on ``(N, C, H, W)`` with stride == kernel on both axes."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    h_out, w_out = h // kernel, w // kernel
    saved = [None]

    def forward(out=None):
        trimmed = x.data[:, :, : h_out * kernel, : w_out * kernel]
        windows = trimmed.reshape(n, c, h_out, kernel, w_out, kernel)
        windows = windows.transpose(0, 1, 2, 4, 3, 5).reshape(
            n, c, h_out, w_out, -1
        )
        saved[0] = arg = windows.argmax(axis=4)
        result = np.take_along_axis(windows, arg[..., None], axis=4)[..., 0]
        return _into(out, result)

    def backward(grad):
        if x.requires_grad:
            arg = saved[0]
            gwin = np.zeros((n, c, h_out, w_out, kernel * kernel))
            np.put_along_axis(gwin, arg[..., None], grad[..., None], axis=4)
            gwin = gwin.reshape(n, c, h_out, w_out, kernel, kernel)
            gwin = gwin.transpose(0, 1, 2, 4, 3, 5).reshape(
                n, c, h_out * kernel, w_out * kernel
            )
            gx = np.zeros_like(x.data)
            gx[:, :, : h_out * kernel, : w_out * kernel] = gwin
            x._accumulate_owned(gx)

    out = Tensor._make(forward(), (x,), backward)
    _record(out, forward)
    return out


def upsample1d(x, factor=2, size=None):
    """Nearest-neighbour upsampling on the length axis of ``(N, C, L)``.

    If ``size`` is given the output is truncated or edge-padded to exactly
    that length, which lets decoders invert floor-mode pooling.
    """
    x = as_tensor(x)
    n, c, l_in = x.shape
    target = l_in * factor if size is None else size
    # Gather directly via the index map; an earlier version materialised
    # np.repeat(x, factor) first and immediately overwrote it with this
    # gather — tests/nn/test_functional_perf.py guards against that dead
    # allocation coming back.
    index = np.minimum(np.arange(target) // factor, l_in - 1)

    def forward(out=None):
        return np.take(x.data, index, axis=2, out=out)

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(x.data)
            # Positions up to ``whole`` map to input cells in full groups of
            # ``factor``; summing each group replaces the np.add.at scatter.
            # For factor 2 (the only factor the architectures use) the
            # two-term group sum is bit-identical to sequential adds into a
            # zeroed buffer; the remainder loop keeps arbitrary factors and
            # the right-edge clamp exact.
            whole = min(target, l_in * factor) // factor * factor
            if whole and factor == 2:
                groups = grad[:, :, :whole].reshape(n, c, whole // factor, factor)
                gx[:, :, : whole // factor] = groups.sum(axis=3)
            elif whole:
                np.add.at(gx, (slice(None), slice(None), index[:whole]),
                          grad[:, :, :whole])
            for j in range(whole, target):
                gx[:, :, index[j]] += grad[:, :, j]
            x._accumulate_owned(gx)

    out = Tensor._make(forward(), (x,), backward)
    _record(out, forward)
    return out


def upsample2d(x, factor=2, size=None):
    """Nearest-neighbour upsampling on the last two axes of ``(N, C, H, W)``."""
    x = as_tensor(x)
    h, w = x.shape[2], x.shape[3]
    th, tw = (h * factor, w * factor) if size is None else size
    row = np.minimum(np.arange(th) // factor, h - 1)
    col = np.minimum(np.arange(tw) // factor, w - 1)

    def forward(out=None):
        return _into(out, x.data[:, :, row[:, None], col[None, :]])

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(x.data)
            np.add.at(gx, (slice(None), slice(None), row[:, None], col[None, :]), grad)
            x._accumulate_owned(gx)

    out = Tensor._make(forward(), (x,), backward)
    _record(out, forward)
    return out


def softmax(x, axis=-1):
    """Numerically-stable softmax as a single recorded primitive.

    The max shift, clip, exp, sum and divide all run inside one fixed-order
    ``forward(out=)`` closure that reads ``x.data`` live, so a recorded tape
    replays the shift with *current* data instead of a stale constant (the
    PR 5 composite formulation had to poison recordings for exactly that
    reason).  The eager values are unchanged: ``a - b`` is bitwise
    ``a + (-b)``, and the clip/exp/sum/divide sequence matches the old
    primitive chain.  The backward uses the closed form
    ``y * (g - sum(g * y))``, reading the live output buffer.
    """
    x = as_tensor(x)

    def forward(out=None):
        shift = x.data.max(axis=axis, keepdims=True)
        if out is None:
            out = np.subtract(x.data, shift)
        else:
            np.subtract(x.data, shift, out=out)
        np.clip(out, -700.0, 700.0, out=out)
        np.exp(out, out=out)
        denom = out.sum(axis=axis, keepdims=True)
        np.divide(out, denom, out=out)
        return out

    out_data = forward()

    def backward(grad):
        if x.requires_grad:
            inner = np.multiply(grad, out_data).sum(axis=axis, keepdims=True)
            x._accumulate_owned(np.multiply(np.subtract(grad, inner), out_data))

    out = Tensor._make(out_data, (x,), backward)
    _record(out, forward)
    return out


def dropout(x, p, rng, training=True):
    """Inverted dropout: zero with probability ``p`` and rescale by 1/(1-p).

    Tape-safe: the mask is drawn inside the recorded closure into
    closure-persistent buffers, pulling from the module's own generator —
    the recording's draw and every replayed epoch's redraw consume exactly
    the RNG stream positions an eager epoch would (one ``rng.random`` of
    ``x.shape`` per call, in op order), so taped and eager training see
    identical masks.  The mask arithmetic reproduces the previous
    ``(draws >= p) / (1 - p)`` bits: the 0/1 comparison result is scaled by
    the same precomputed ``1/(1-p)`` quotient.
    """
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    p = float(p)
    scale = 1.0 / (1.0 - p)
    buffers = [None, None]  # [raw draws, scaled mask]

    def forward(out=None):
        draw = buffers[0]
        if draw is None:
            draw = buffers[0] = rng.random(x.shape)
            buffers[1] = np.empty(x.shape)
        else:
            rng.random(out=draw)
        mask = buffers[1]
        np.greater_equal(draw, p, out=mask)
        mask *= scale
        return np.multiply(x.data, mask, out=out)

    def backward(grad):
        if x.requires_grad:
            x._accumulate_product(grad, buffers[1])

    out = Tensor._make(forward(), (x,), backward)
    _record(out, forward)
    return out


def sampled_normal(shape, rng):
    """A standard-normal draw recorded as a replayable op (tape-safe).

    Equivalent to ``Tensor(rng.standard_normal(shape))`` — a graph constant
    with no gradient — except the draw happens *inside* the recorded
    closure: every replayed epoch redraws into the persistent output buffer
    from ``rng``, consuming the same stream positions an eager epoch would,
    instead of replaying one stale sample (the reparameterisation noise of
    the VAE baselines goes through here).
    """
    shape = tuple(int(s) for s in shape)

    def forward(out=None):
        if out is None:
            return rng.standard_normal(shape)
        rng.standard_normal(out=out)
        return out

    out = Tensor(forward())
    _record(out, forward)
    return out
