"""Structured autograd operations: convolutions, pooling, padding, softmax.

These primitives complete the :mod:`repro.nn` substrate.  Convolutions use an
im2col formulation (``numpy.lib.stride_tricks.sliding_window_view`` +
``einsum``), which keeps the forward pass vectorised; backward passes scatter
gradients back with ``np.add.at``.
"""

from __future__ import annotations

import threading

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor, as_tensor

__all__ = [
    "pad1d",
    "pad2d",
    "conv1d",
    "conv2d",
    "max_pool1d",
    "max_pool2d",
    "upsample1d",
    "upsample2d",
    "softmax",
    "dropout",
    "stable_kernels",
    "stable_kernels_active",
]

# --------------------------------------------------------------------- #
# Shape-stable kernel mode.
#
# The default conv1d forward dispatches through `einsum(..., optimize=True)`,
# whose BLAS-backed inner kernels round the last few output positions
# differently depending on the *length* of the input (tail-block handling).
# That is invisible to training, but the receptive-field-bounded tail
# forwards of repro.core.scoring splice slice forwards into cached full
# forwards and promise bit-identical results — which requires every output
# position's arithmetic to be independent of how long the forwarded array
# happens to be.  `stable_kernels()` switches conv1d to a per-tap
# accumulation with a fixed reduction order (~1.6x slower, still
# vectorised); serving paths enter it around their forwards, training
# never pays for it.
#
# The flag is thread-local (like grad mode in .tensor): every serving
# forward enters the context on the thread that runs it — including the
# threaded drain backend's workers, which each call the forward helper
# themselves — while a fit training concurrently on another thread keeps
# the default kernels.  The stable branch rounds differently (that is the
# point), so leaking it into a fit would make training results depend on
# drain timing and break fixed-seed determinism.

_STABLE_STATE = threading.local()


class stable_kernels:
    """Context manager: length-stable conv arithmetic (serving forwards).

    Re-entrant and per-thread."""

    def __enter__(self):
        _STABLE_STATE.depth = getattr(_STABLE_STATE, "depth", 0) + 1
        return self

    def __exit__(self, exc_type, exc, tb):
        _STABLE_STATE.depth -= 1
        return False


def stable_kernels_active():
    """Whether conv kernels are in length-stable mode on this thread."""
    return getattr(_STABLE_STATE, "depth", 0) > 0


def pad1d(x, padding):
    """Zero-pad the last axis of a ``(N, C, L)`` tensor by ``padding`` each side."""
    x = as_tensor(x)
    if padding == 0:
        return x
    n, c, length = x.data.shape
    # Hand-rolled instead of np.pad: this runs per conv call on the serving
    # hot path, where np.pad's argument normalisation dominates small inputs.
    out_data = np.zeros((n, c, length + 2 * padding))
    out_data[:, :, padding : padding + length] = x.data

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad[:, :, padding:-padding])

    return Tensor._make(out_data, (x,), backward)


def pad2d(x, padding):
    """Zero-pad the last two axes of a ``(N, C, H, W)`` tensor."""
    x = as_tensor(x)
    if padding == 0:
        return x
    p = padding
    out_data = np.pad(x.data, ((0, 0), (0, 0), (p, p), (p, p)))

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad[:, :, p:-p, p:-p])

    return Tensor._make(out_data, (x,), backward)


def conv1d(x, weight, bias=None, padding=0):
    """1D convolution (stride 1).

    Parameters
    ----------
    x: Tensor ``(N, C_in, L)``
    weight: Tensor ``(C_out, C_in, K)``
    bias: optional Tensor ``(C_out,)``
    padding: symmetric zero padding on the length axis.
    """
    x = pad1d(as_tensor(x), padding)
    weight = as_tensor(weight)
    n, c_in, length = x.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError("channel mismatch: %d vs %d" % (c_in, c_in_w))
    if length < k:
        raise ValueError("input length %d shorter than kernel %d" % (length, k))
    if stable_kernels_active():
        # Fixed-order accumulation: one unoptimised einsum per kernel tap,
        # summed tap-by-tap.  Every output position sees the exact same
        # floating-point operation sequence regardless of L, which is what
        # lets a tail-slice forward reproduce a full forward bit-for-bit.
        l_out = length - k + 1
        out_data = None
        for tap in range(k):
            contrib = np.einsum(
                "fc,ncl->nfl",
                weight.data[:, :, tap],
                x.data[:, :, tap : tap + l_out],
                optimize=False,
            )
            out_data = contrib if out_data is None else out_data + contrib
    else:
        cols = sliding_window_view(x.data, k, axis=2)  # (N, C_in, L_out, K)
        out_data = np.einsum("nclk,fck->nfl", cols, weight.data, optimize=True)
    if bias is not None:
        bias = as_tensor(bias)
        out_data = out_data + bias.data[None, :, None]

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        # grad: (N, C_out, L_out)
        if weight.requires_grad:
            cols = sliding_window_view(x.data, k, axis=2)  # (N, C_in, L_out, K)
            gw = np.einsum("nfl,nclk->fck", grad, cols, optimize=True)
            weight._accumulate(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            gx_cols = np.einsum("nfl,fck->nclk", grad, weight.data, optimize=True)
            gx = np.zeros_like(x.data)
            l_out = grad.shape[2]
            # Scatter each kernel tap back onto the input axis.
            for tap in range(k):
                gx[:, :, tap : tap + l_out] += gx_cols[:, :, :, tap]
            x._accumulate(gx)

    return Tensor._make(out_data, parents, backward)


def conv2d(x, weight, bias=None, padding=0):
    """2D convolution (stride 1).

    Parameters
    ----------
    x: Tensor ``(N, C_in, H, W)``
    weight: Tensor ``(C_out, C_in, KH, KW)``
    """
    x = pad2d(as_tensor(x), padding)
    weight = as_tensor(weight)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError("channel mismatch: %d vs %d" % (c_in, c_in_w))
    if h < kh or w < kw:
        raise ValueError("input %s smaller than kernel %s" % ((h, w), (kh, kw)))
    cols = sliding_window_view(x.data, (kh, kw), axis=(2, 3))
    # cols: (N, C_in, H_out, W_out, KH, KW)
    out_data = np.einsum("nchwij,fcij->nfhw", cols, weight.data, optimize=True)
    if bias is not None:
        bias = as_tensor(bias)
        out_data = out_data + bias.data[None, :, None, None]

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        if weight.requires_grad:
            gw = np.einsum("nfhw,nchwij->fcij", grad, cols, optimize=True)
            weight._accumulate(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            gx_cols = np.einsum("nfhw,fcij->nchwij", grad, weight.data, optimize=True)
            gx = np.zeros_like(x.data)
            h_out, w_out = grad.shape[2], grad.shape[3]
            for i in range(kh):
                for j in range(kw):
                    gx[:, :, i : i + h_out, j : j + w_out] += gx_cols[:, :, :, :, i, j]
            x._accumulate(gx)

    return Tensor._make(out_data, parents, backward)


def max_pool1d(x, kernel=2):
    """Max pooling on ``(N, C, L)`` with stride == kernel.

    Trailing elements that do not fill a window are dropped, matching the
    usual floor-mode pooling semantics.
    """
    x = as_tensor(x)
    n, c, length = x.shape
    l_out = length // kernel
    trimmed = x.data[:, :, : l_out * kernel].reshape(n, c, l_out, kernel)
    arg = trimmed.argmax(axis=3)
    out_data = np.take_along_axis(trimmed, arg[..., None], axis=3)[..., 0]

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(x.data)
            view = gx[:, :, : l_out * kernel].reshape(n, c, l_out, kernel)
            np.put_along_axis(view, arg[..., None], grad[..., None], axis=3)
            x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


def max_pool2d(x, kernel=2):
    """Max pooling on ``(N, C, H, W)`` with stride == kernel on both axes."""
    x = as_tensor(x)
    n, c, h, w = x.shape
    h_out, w_out = h // kernel, w // kernel
    trimmed = x.data[:, :, : h_out * kernel, : w_out * kernel]
    windows = trimmed.reshape(n, c, h_out, kernel, w_out, kernel)
    windows = windows.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h_out, w_out, -1)
    arg = windows.argmax(axis=4)
    out_data = np.take_along_axis(windows, arg[..., None], axis=4)[..., 0]

    def backward(grad):
        if x.requires_grad:
            gwin = np.zeros_like(windows)
            np.put_along_axis(gwin, arg[..., None], grad[..., None], axis=4)
            gwin = gwin.reshape(n, c, h_out, w_out, kernel, kernel)
            gwin = gwin.transpose(0, 1, 2, 4, 3, 5).reshape(
                n, c, h_out * kernel, w_out * kernel
            )
            gx = np.zeros_like(x.data)
            gx[:, :, : h_out * kernel, : w_out * kernel] = gwin
            x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


def upsample1d(x, factor=2, size=None):
    """Nearest-neighbour upsampling on the length axis of ``(N, C, L)``.

    If ``size`` is given the output is truncated or edge-padded to exactly
    that length, which lets decoders invert floor-mode pooling.
    """
    x = as_tensor(x)
    out_data = np.repeat(x.data, factor, axis=2)
    length = out_data.shape[2]
    target = length if size is None else size
    index = np.minimum(np.arange(target) // factor, x.shape[2] - 1)

    out_data = x.data[:, :, index]

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(x.data)
            np.add.at(gx, (slice(None), slice(None), index), grad)
            x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


def upsample2d(x, factor=2, size=None):
    """Nearest-neighbour upsampling on the last two axes of ``(N, C, H, W)``."""
    x = as_tensor(x)
    h, w = x.shape[2], x.shape[3]
    th, tw = (h * factor, w * factor) if size is None else size
    row = np.minimum(np.arange(th) // factor, h - 1)
    col = np.minimum(np.arange(tw) // factor, w - 1)
    out_data = x.data[:, :, row[:, None], col[None, :]]

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(x.data)
            np.add.at(gx, (slice(None), slice(None), row[:, None], col[None, :]), grad)
            x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


def softmax(x, axis=-1):
    """Numerically-stable softmax built from autograd primitives."""
    x = as_tensor(x)
    shifted = x - x.data.max(axis=axis, keepdims=True)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def dropout(x, p, rng, training=True):
    """Inverted dropout: zero with probability ``p`` and rescale by 1/(1-p)."""
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)
