"""Leading-axis-batched ensemble programs (tape v2's batched replay).

A :class:`repro.core.ensemble.RobustEnsemble` fits N independent members
whose training graphs are *structurally identical* whenever their specs
match — same architecture, same shapes, different seeds.  Fitting them as N
python fits (even thread-parallel ones) leaves most of the arithmetic
serialised behind the GIL and the interpreter.  This module stacks the M
members of such a group along a new leading axis — parameters ``(M, ...)``,
activations ``(M, C, L)``, gradients ``(M, ...)`` — so one training epoch of
the whole group executes as a handful of batched GEMMs, and the tape then
replays that single batched program per epoch.

Bit-identity to the serial member fits is a hard contract (the ensemble's
``compile="batched"`` mode must change wall-clock, never results).  Every
batched op here is constructed so its member slice runs the exact
floating-point operation sequence of the serial op:

* ``np.matmul`` on ``(M, a, b) @ (M, b, c)`` stacks computes each slice
  exactly like the serial 2D GEMM (measured, and guarded by the ensemble
  contract test);
* reductions are taken per member (``sum(axis=(1, 2))``, per-member
  ``np.dot`` norms) over the same contiguous memory order the serial fit
  reduces, so pairwise summation splits identically;
* the loss scales by ``1 / (D * C)`` — each member's *own* element count —
  so gradients match the serial per-member ``mse_loss`` bit for bit;
* gradient clipping and Adam run per member slice (elementwise ops on the
  stacked arrays), with the optimiser's shared step counter in lockstep
  with every still-active member's serial counter.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import functional as F
from . import tape as nn_tape
from .layers import Module, Parameter
from .tensor import Tensor, _record, as_tensor, no_grad

__all__ = [
    "BatchedConvSeriesAE",
    "bconv1d",
    "batched_mse_loss",
    "batched_clip_grad_norm",
    "batched_train_reconstruction",
]


def bconv1d(x, weight, bias, padding=0):
    """Member-batched 1D convolution (stride 1).

    Parameters
    ----------
    x: Tensor ``(M, C_in, L)`` — one sample per member.
    weight: Tensor ``(M, C_out, C_in, K)`` — stacked member kernels.
    bias: Tensor ``(M, C_out)``.
    padding: symmetric zero padding on the length axis.

    Slice ``m`` of the output reproduces ``conv1d(x[m:m+1], weight[m],
    bias[m])`` bit for bit: the multi-channel path runs the same per-tap
    GEMM accumulation in the same tap order (batched matmul computes each
    member slice exactly like the serial 2D GEMM), and the single-channel
    path runs the serial im2col einsum per member slice.
    """
    x = F.pad1d(as_tensor(x), padding)
    weight = as_tensor(weight)
    bias = as_tensor(bias)
    m, c_in, length = x.shape
    m_w, c_out, c_in_w, k = weight.shape
    if m != m_w or c_in != c_in_w:
        raise ValueError(
            "batched shape mismatch: x %s vs weight %s"
            % ((m, c_in, length), weight.shape)
        )
    if length < k:
        raise ValueError("input length %d shorter than kernel %d" % (length, k))
    l_out = length - k + 1
    scratch = [None]

    def forward(out=None):
        if out is None:
            out = np.empty((m, c_out, l_out))
        if c_in == 1:
            # Serial conv1d takes the im2col einsum for single-channel
            # inputs; run it per member slice so the bits match.
            cols = sliding_window_view(x.data, k, axis=2)
            for i in range(m):
                np.einsum(  # repro: lint-ok[einsum-order] training-only batched kernel; per-member slice of the serial eager einsum, never under stable_kernels()
                    "nclk,fck->nfl", cols[i : i + 1], weight.data[i],
                    optimize=True, out=out[i : i + 1])
        else:
            np.matmul(weight.data[:, :, :, 0], x.data[:, :, 0:l_out], out=out)
            tmp = scratch[0]
            if k > 1 and (tmp is None or tmp.shape != out.shape):
                tmp = scratch[0] = np.empty_like(out)
            for tap in range(1, k):
                np.matmul(weight.data[:, :, :, tap],
                          x.data[:, :, tap : tap + l_out], out=tmp)
                np.add(out, tmp, out=out)
        out += bias.data[:, :, None]
        return out

    gx_buf = [None]
    gtmp_buf = [None]

    def backward(grad):
        # grad: (M, C_out, L_out)
        if weight.requires_grad:
            gw = np.empty_like(weight.data)
            for tap in range(k):
                xt = x.data[:, :, tap : tap + l_out]
                # Slice m: grad[m] @ xt[m].T — the serial n==1 branch.
                np.matmul(grad, xt.transpose(0, 2, 1), out=gw[:, :, :, tap])
            weight._accumulate_owned(gw)
        if bias.requires_grad:
            # Slice m equals the serial grad.sum(axis=(0, 2)) over (1, F, L).
            bias._accumulate(grad.sum(axis=2))
        if x.requires_grad:
            gx = gx_buf[0]
            if gx is None or gx.shape != x.data.shape:
                gx = gx_buf[0] = np.zeros_like(x.data)
            else:
                gx.fill(0.0)
            tmp = gtmp_buf[0]
            if tmp is None or tmp.shape != (m, c_in, l_out):
                tmp = gtmp_buf[0] = np.empty((m, c_in, l_out))
            for tap in range(k):
                np.matmul(weight.data[:, :, :, tap].transpose(0, 2, 1), grad,
                          out=tmp)
                target = gx[:, :, tap : tap + l_out]
                np.add(target, tmp, out=target)
            x._accumulate_owned(gx)

    out = Tensor._make(forward(), (x, weight, bias), backward)
    _record(out, forward)
    return out


class BatchedConvSeriesAE(Module):
    """M identical-shape :class:`~repro.core.autoencoders.ConvSeriesAE`
    members stacked into one leading-axis-batched module.

    Construction copies every member's parameters into stacked ``(M, ...)``
    Parameters; the forward mirrors ``ConvSeriesAE.forward`` with
    :func:`bconv1d` in place of the per-member convs (pooling, upsampling
    and activations are per-sample ops, so the stacked batch axis rides
    their existing batch axis unchanged).
    """

    # Pure structured primitives with shape-only branching — a recorded
    # batched training tape replays the whole group faithfully.
    tape_safe = True

    def __init__(self, models):
        super().__init__()
        if len(models) < 2:
            raise ValueError("need at least two members to batch")
        stacks = []
        for position in zip(*(model.named_parameters() for model in models)):
            names = {name for name, __ in position}
            if len(names) != 1:
                raise ValueError("member parameter orders diverge: %s" % names)
            stacks.append(Parameter(np.stack([p.data for __, p in position])))
        # Registered parameter list, in member named_parameters order (the
        # list registers each Parameter item; the structural pair lists
        # below hold tuples, which parameter registration skips).
        self.params = stacks
        pairs = [(stacks[2 * j], stacks[2 * j + 1])
                 for j in range(len(stacks) // 2)]
        num_layers = (len(pairs) - 1) // 2
        self._enc = pairs[:num_layers]
        self._dec = pairs[num_layers : 2 * num_layers]
        self._head = [pairs[2 * num_layers]]
        self.n_members = len(models)
        kernel_size = int(stacks[0].shape[3])
        self.padding = kernel_size // 2

    def forward(self, x):
        # Mirrors ConvSeriesAE.forward with the member axis riding the
        # batch axis of the pooling/upsampling/activation primitives.
        length = x.shape[2]
        h = x
        for w, b in self._enc:
            h = bconv1d(h, w, b, padding=self.padding).relu()
        h = F.max_pool1d(h, 2)
        h = F.upsample1d(h, 2, size=length)
        for w, b in self._dec:
            h = bconv1d(h, w, b, padding=self.padding).relu()
        w, b = self._head[0]
        return bconv1d(h, w, b, padding=self.padding)

    def snapshot_member(self, index):
        """Copies of member ``index``'s parameter slices, in the member's
        ``named_parameters`` order (used to freeze a converged member while
        the rest of the group keeps training its slice as dead weight)."""
        return [p.data[index].copy() for p in self.params]


def batched_mse_loss(prediction, target):
    """Sum over members of each member's own ``mse_loss``.

    The per-element gradient is ``2 * diff / (D * C)`` — each member's own
    element count, exactly the serial ``mse_loss`` scaling — and the
    per-member reduction sums the same contiguous ``(D, C)`` block the
    serial loss sums, so both values and gradients match bit for bit.
    """
    diff = prediction - Tensor(target)
    sq = diff * diff
    per_member = sq.sum(axis=(1, 2))
    numel = float(target.shape[1] * target.shape[2])
    return (per_member * (1.0 / numel)).sum()


def batched_clip_grad_norm(parameters, max_norm, n_members):
    """Per-member-slice gradient clipping matching serial ``clip_grad_norm``.

    Each member's norm accumulates ``np.dot`` products over its parameter
    slices in the same parameter order (and the same contiguous memory
    order) as the serial clip, and only clipped members are rescaled —
    unclipped slices are multiplied by exactly 1.0, a bitwise identity.
    Returns the per-member pre-clip norms.
    """
    parameters = [p for p in parameters if p.grad is not None]
    totals = np.zeros(n_members)
    for p in parameters:
        rows = p.grad.reshape(n_members, -1)
        for i in range(n_members):
            row = rows[i]
            totals[i] += np.dot(row, row)
    norms = np.sqrt(totals)
    clipped = (norms > max_norm) if max_norm > 0 else np.zeros(n_members, bool)
    if clipped.any():
        scales = np.ones(n_members)
        scales[clipped] = max_norm / (norms[clipped] + 1e-12)
        for p in parameters:
            p.grad *= scales.reshape((n_members,) + (1,) * (p.grad.ndim - 1))
    return norms


def batched_train_reconstruction(model, optimizer, inputs, epochs, n_members):
    """Full-batch reconstruction training of a stacked member group.

    The batched counterpart of
    :func:`repro.core.autoencoders.train_reconstruction`: minimises each
    member's own reconstruction loss for ``epochs`` Adam steps and returns
    the final stacked reconstruction ``(M, D, C)`` as a plain array.  The
    first step records a tape of the whole batched program; later epochs —
    and later calls from the ensemble's ADMM iterations — replay it.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    epochs = max(int(epochs), 1)

    def loss_fn(x):
        prediction = model(x)
        return batched_mse_loss(prediction, x.data), prediction

    done = 0
    tape = nn_tape.training_tape(model, inputs, None, loss_fn=loss_fn)
    if tape is not None:
        for __ in range(epochs):
            optimizer.zero_grad()
            tape.step(inputs, None)
            batched_clip_grad_norm(model.params, 5.0, n_members)
            optimizer.step()
            done += 1
            if tape.failed:
                break
        if not tape.failed:
            return np.array(tape.forward(inputs))
    output = None
    for __ in range(epochs - done):
        optimizer.zero_grad()
        loss, __prediction = loss_fn(Tensor(inputs))
        loss.backward()
        batched_clip_grad_norm(model.params, 5.0, n_members)
        optimizer.step()
    with no_grad():
        output = model(Tensor(inputs)).data
    return output
