"""Leading-axis-batched ensemble programs (tape v2's batched replay).

A :class:`repro.core.ensemble.RobustEnsemble` fits N independent members
whose training graphs are *structurally identical* whenever their specs
match — same architecture, same shapes, different seeds.  Fitting them as N
python fits (even thread-parallel ones) leaves most of the arithmetic
serialised behind the GIL and the interpreter.  This module stacks the M
members of such a group along a new leading axis — parameters ``(M, ...)``,
activations ``(M, C, L)``, gradients ``(M, ...)`` — so one training epoch of
the whole group executes as a handful of batched GEMMs, and the tape then
replays that single batched program per epoch.

Bit-identity to the serial member fits is a hard contract (the ensemble's
``compile="batched"`` mode must change wall-clock, never results).  Every
batched op here is constructed so its member slice runs the exact
floating-point operation sequence of the serial op:

* ``np.matmul`` on ``(M, a, b) @ (M, b, c)`` stacks computes each slice
  exactly like the serial 2D GEMM (measured, and guarded by the ensemble
  contract test);
* reductions are taken per member (``sum(axis=(1, 2))``, per-member
  ``np.dot`` norms) over the same contiguous memory order the serial fit
  reduces, so pairwise summation splits identically;
* the loss scales by ``1 / (D * C)`` — each member's *own* element count —
  so gradients match the serial per-member ``mse_loss`` bit for bit;
* gradient clipping and Adam run per member slice (elementwise ops on the
  stacked arrays), with the optimiser's shared step counter in lockstep
  with every still-active member's serial counter.

Stacked *inference* programs (this PR).  Training batching stacks M copies
of one spec fitted together; serving wants the transpose — M **already
fitted** detectors of the same spec, each with its own weights, scoring M
independent window slices in one pass.  :func:`stacked_score_plan` flattens
the members' stable score forwards into one shared step plan, and
:class:`StackedScoreProgram` compiles that plan into persistent buffers
whose conv steps run the *exact* length-stable arithmetic of the serial
serving kernel per member slice (the same per-position channel dot, the
same tap order, the same in-place accumulation), so slice ``m`` of the
stacked output is bit-identical to member ``m``'s solo stable forward.
"""

from __future__ import annotations

import threading

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import functional as F
from . import tape as nn_tape
from .layers import Conv1d, MaxPool1d, Module, Parameter, ReLU
from .tensor import Tensor, _record, as_tensor, no_grad

__all__ = [
    "BatchedConvSeriesAE",
    "StackedScoreProgram",
    "bconv1d",
    "batched_mse_loss",
    "batched_clip_grad_norm",
    "batched_train_reconstruction",
    "stacked_member_token",
    "stacked_score_plan",
]


def bconv1d(x, weight, bias, padding=0):
    """Member-batched 1D convolution (stride 1).

    Parameters
    ----------
    x: Tensor ``(M, C_in, L)`` — one sample per member.
    weight: Tensor ``(M, C_out, C_in, K)`` — stacked member kernels.
    bias: Tensor ``(M, C_out)``.
    padding: symmetric zero padding on the length axis.

    Slice ``m`` of the output reproduces ``conv1d(x[m:m+1], weight[m],
    bias[m])`` bit for bit: the multi-channel path runs the same per-tap
    GEMM accumulation in the same tap order (batched matmul computes each
    member slice exactly like the serial 2D GEMM), and the single-channel
    path runs the serial im2col einsum per member slice.
    """
    x = F.pad1d(as_tensor(x), padding)
    weight = as_tensor(weight)
    bias = as_tensor(bias)
    m, c_in, length = x.shape
    m_w, c_out, c_in_w, k = weight.shape
    if m != m_w or c_in != c_in_w:
        raise ValueError(
            "batched shape mismatch: x %s vs weight %s"
            % ((m, c_in, length), weight.shape)
        )
    if length < k:
        raise ValueError("input length %d shorter than kernel %d" % (length, k))
    l_out = length - k + 1
    scratch = [None]

    def forward(out=None):
        if out is None:
            out = np.empty((m, c_out, l_out))
        if c_in == 1:
            # Serial conv1d takes the im2col einsum for single-channel
            # inputs; run it per member slice so the bits match.
            cols = sliding_window_view(x.data, k, axis=2)
            for i in range(m):
                np.einsum(  # repro: lint-ok[einsum-order] training-only batched kernel; per-member slice of the serial eager einsum, never under stable_kernels()
                    "nclk,fck->nfl", cols[i : i + 1], weight.data[i],
                    optimize=True, out=out[i : i + 1])
        else:
            np.matmul(weight.data[:, :, :, 0], x.data[:, :, 0:l_out], out=out)
            tmp = scratch[0]
            if k > 1 and (tmp is None or tmp.shape != out.shape):
                tmp = scratch[0] = np.empty_like(out)
            for tap in range(1, k):
                np.matmul(weight.data[:, :, :, tap],
                          x.data[:, :, tap : tap + l_out], out=tmp)
                np.add(out, tmp, out=out)
        out += bias.data[:, :, None]
        return out

    gx_buf = [None]
    gtmp_buf = [None]

    def backward(grad):
        # grad: (M, C_out, L_out)
        if weight.requires_grad:
            gw = np.empty_like(weight.data)
            for tap in range(k):
                xt = x.data[:, :, tap : tap + l_out]
                # Slice m: grad[m] @ xt[m].T — the serial n==1 branch.
                np.matmul(grad, xt.transpose(0, 2, 1), out=gw[:, :, :, tap])
            weight._accumulate_owned(gw)
        if bias.requires_grad:
            # Slice m equals the serial grad.sum(axis=(0, 2)) over (1, F, L).
            bias._accumulate(grad.sum(axis=2))
        if x.requires_grad:
            gx = gx_buf[0]
            if gx is None or gx.shape != x.data.shape:
                gx = gx_buf[0] = np.zeros_like(x.data)
            else:
                gx.fill(0.0)
            tmp = gtmp_buf[0]
            if tmp is None or tmp.shape != (m, c_in, l_out):
                tmp = gtmp_buf[0] = np.empty((m, c_in, l_out))
            for tap in range(k):
                np.matmul(weight.data[:, :, :, tap].transpose(0, 2, 1), grad,
                          out=tmp)
                target = gx[:, :, tap : tap + l_out]
                np.add(target, tmp, out=target)
            x._accumulate_owned(gx)

    out = Tensor._make(forward(), (x, weight, bias), backward)
    _record(out, forward)
    return out


class BatchedConvSeriesAE(Module):
    """M identical-shape :class:`~repro.core.autoencoders.ConvSeriesAE`
    members stacked into one leading-axis-batched module.

    Construction copies every member's parameters into stacked ``(M, ...)``
    Parameters; the forward mirrors ``ConvSeriesAE.forward`` with
    :func:`bconv1d` in place of the per-member convs (pooling, upsampling
    and activations are per-sample ops, so the stacked batch axis rides
    their existing batch axis unchanged).
    """

    # Pure structured primitives with shape-only branching — a recorded
    # batched training tape replays the whole group faithfully.
    tape_safe = True

    def __init__(self, models):
        super().__init__()
        if len(models) < 2:
            raise ValueError("need at least two members to batch")
        stacks = []
        for position in zip(*(model.named_parameters() for model in models)):
            names = {name for name, __ in position}
            if len(names) != 1:
                raise ValueError("member parameter orders diverge: %s" % names)
            stacks.append(Parameter(np.stack([p.data for __, p in position])))
        # Registered parameter list, in member named_parameters order (the
        # list registers each Parameter item; the structural pair lists
        # below hold tuples, which parameter registration skips).
        self.params = stacks
        pairs = [(stacks[2 * j], stacks[2 * j + 1])
                 for j in range(len(stacks) // 2)]
        num_layers = (len(pairs) - 1) // 2
        self._enc = pairs[:num_layers]
        self._dec = pairs[num_layers : 2 * num_layers]
        self._head = [pairs[2 * num_layers]]
        self.n_members = len(models)
        kernel_size = int(stacks[0].shape[3])
        self.padding = kernel_size // 2

    def forward(self, x):
        # Mirrors ConvSeriesAE.forward with the member axis riding the
        # batch axis of the pooling/upsampling/activation primitives.
        length = x.shape[2]
        h = x
        for w, b in self._enc:
            h = bconv1d(h, w, b, padding=self.padding).relu()
        h = F.max_pool1d(h, 2)
        h = F.upsample1d(h, 2, size=length)
        for w, b in self._dec:
            h = bconv1d(h, w, b, padding=self.padding).relu()
        w, b = self._head[0]
        return bconv1d(h, w, b, padding=self.padding)

    def snapshot_member(self, index):
        """Copies of member ``index``'s parameter slices, in the member's
        ``named_parameters`` order (used to freeze a converged member while
        the rest of the group keeps training its slice as dead weight)."""
        return [p.data[index].copy() for p in self.params]


def batched_mse_loss(prediction, target):
    """Sum over members of each member's own ``mse_loss``.

    The per-element gradient is ``2 * diff / (D * C)`` — each member's own
    element count, exactly the serial ``mse_loss`` scaling — and the
    per-member reduction sums the same contiguous ``(D, C)`` block the
    serial loss sums, so both values and gradients match bit for bit.
    """
    diff = prediction - Tensor(target)
    sq = diff * diff
    per_member = sq.sum(axis=(1, 2))
    numel = float(target.shape[1] * target.shape[2])
    return (per_member * (1.0 / numel)).sum()


def batched_clip_grad_norm(parameters, max_norm, n_members):
    """Per-member-slice gradient clipping matching serial ``clip_grad_norm``.

    Each member's norm accumulates ``np.dot`` products over its parameter
    slices in the same parameter order (and the same contiguous memory
    order) as the serial clip, and only clipped members are rescaled —
    unclipped slices are multiplied by exactly 1.0, a bitwise identity.
    Returns the per-member pre-clip norms.
    """
    parameters = [p for p in parameters if p.grad is not None]
    totals = np.zeros(n_members)
    for p in parameters:
        rows = p.grad.reshape(n_members, -1)
        for i in range(n_members):
            row = rows[i]
            totals[i] += np.dot(row, row)
    norms = np.sqrt(totals)
    clipped = (norms > max_norm) if max_norm > 0 else np.zeros(n_members, bool)
    if clipped.any():
        scales = np.ones(n_members)
        scales[clipped] = max_norm / (norms[clipped] + 1e-12)
        for p in parameters:
            p.grad *= scales.reshape((n_members,) + (1,) * (p.grad.ndim - 1))
    return norms


def batched_train_reconstruction(model, optimizer, inputs, epochs, n_members):
    """Full-batch reconstruction training of a stacked member group.

    The batched counterpart of
    :func:`repro.core.autoencoders.train_reconstruction`: minimises each
    member's own reconstruction loss for ``epochs`` Adam steps and returns
    the final stacked reconstruction ``(M, D, C)`` as a plain array.  The
    first step records a tape of the whole batched program; later epochs —
    and later calls from the ensemble's ADMM iterations — replay it.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    epochs = max(int(epochs), 1)

    def loss_fn(x):
        prediction = model(x)
        return batched_mse_loss(prediction, x.data), prediction

    done = 0
    tape = nn_tape.training_tape(model, inputs, None, loss_fn=loss_fn)
    if tape is not None:
        for __ in range(epochs):
            optimizer.zero_grad()
            tape.step(inputs, None)
            batched_clip_grad_norm(model.params, 5.0, n_members)
            optimizer.step()
            done += 1
            if tape.failed:
                break
        if not tape.failed:
            return np.array(tape.forward(inputs))
    output = None
    for __ in range(epochs - done):
        optimizer.zero_grad()
        loss, __prediction = loss_fn(Tensor(inputs))
        loss.backward()
        batched_clip_grad_norm(model.params, 5.0, n_members)
        optimizer.step()
    with no_grad():
        output = model(Tensor(inputs)).data
    return output


# --------------------------------------------------------------------- #
# stacked inference programs (cross-detector batched score forwards)
# --------------------------------------------------------------------- #

#: Plan marker for :class:`repro.core.autoencoders.ConvSeriesAE`'s
#: functional decode-side upsampling (it is called in ``forward``, not
#: registered as a child module, so the layer chain needs a stand-in).
_UPSAMPLE = object()


def _score_layer_chain(module):
    """The flat layer chain ``module``'s stable score forward executes.

    Only architectures whose serving forward is a straight pipeline of
    Conv1d/ReLU/MaxPool1d/upsample steps have a stacked-inference
    template; anything else returns None (the caller falls back to solo
    tapes or eager forwards).  Matching is by type name + structural
    validation in :func:`stacked_score_plan` — ``repro.nn`` cannot import
    ``repro.core``, and the architecture fingerprints that group members
    guarantee homogeneous types anyway.
    """
    name = type(module).__name__
    if name == "ConvSeriesAE":
        return (list(module.encoder) + [_UPSAMPLE]
                + list(module.decoder_convs) + [module.readout])
    if name == "ConvTransform1d":
        return list(module.net)
    return None


def stacked_score_plan(modules):
    """Shared step plan for same-architecture members, or None.

    ``modules`` holds one serving module per batch row (the same object
    may appear on several rows).  Returns a list of steps —
    ``("conv", member_layers, padding)`` / ``("relu",)`` /
    ``("pool", kernel)`` / ``("upsample", factor)`` — when every member
    runs the identical pipeline with identically-shaped weights, and None
    when the group cannot stack (unknown architecture, diverging layer
    counts, or mismatched weight shapes after a botched hot-swap).
    """
    modules = list(modules)
    if not modules:
        return None
    first_type = type(modules[0])
    if any(type(module) is not first_type for module in modules):
        return None
    chains = []
    for module in modules:
        try:
            chain = _score_layer_chain(module)
        except (AttributeError, TypeError):
            return None
        if chain is None:
            return None
        chains.append(chain)
    if len({len(chain) for chain in chains}) != 1:
        return None
    steps = []
    for position in zip(*chains):
        lead = position[0]
        if lead is _UPSAMPLE:
            if any(layer is not _UPSAMPLE for layer in position):
                return None
            steps.append(("upsample", 2))
        elif isinstance(lead, Conv1d):
            shape = lead.weight.data.shape
            padding = lead.padding
            ok = all(
                isinstance(layer, Conv1d)
                and layer.weight.data.shape == shape
                and layer.padding == padding
                and layer.bias is not None
                for layer in position
            )
            if not ok:
                return None
            steps.append(("conv", position, int(padding)))
        elif isinstance(lead, ReLU):
            if any(not isinstance(layer, ReLU) for layer in position):
                return None
            steps.append(("relu",))
        elif isinstance(lead, MaxPool1d):
            kernel = lead.kernel
            if any(not isinstance(layer, MaxPool1d) or layer.kernel != kernel
                   for layer in position):
                return None
            steps.append(("pool", int(kernel)))
        else:
            return None
    if not any(step[0] == "conv" for step in steps):
        return None
    return steps


def stacked_member_token(modules):
    """Identity token of the member modules and their parameter arrays.

    A cached :class:`StackedScoreProgram` holds *copies* of the member
    weights, so it must be refreshed whenever the membership changes or a
    member's parameter is hot-swapped to a fresh backing array (the
    versioned-swap convention: rebind ``.data``, don't mutate a live
    fitted module's weights in place).
    """
    return tuple(
        (id(module),)
        + tuple(id(p.data) for __, p in module.named_parameters())
        for module in modules
    )


class StackedScoreProgram:
    """Compiled stacked score forward: M members, one replayable pipeline.

    Built from a :func:`stacked_score_plan` for a fixed stacked input
    shape ``(M, C_in, L)`` — row ``m`` is one window slice owned by member
    ``m``.  Member weights are stacked along a leading axis once at build
    time, every intermediate activation gets a persistent buffer, and
    :meth:`run` just executes the step closures.  Each conv step runs the
    serving kernel's length-stable arithmetic per member slice — the same
    per-position channel dot (``einsum("mfc,mcl->mfl")`` computes slice
    ``m`` exactly like the serial ``einsum("fc,ncl->nfl")``), the same tap
    order, the same in-place tap accumulation and bias add — so the
    stacked output is bit-identical to M solo stable forwards.

    The stacked parameter copies are replay state: mutating them outside
    this class desynchronises the program from its members silently (the
    ``stacked-weight-mutation`` lint rule flags it).  Hot-swap member
    weights by rebinding ``.data``; :func:`stacked_member_token` changes
    and the owning cache calls :meth:`refresh`.
    """

    #: Stacked parameter buffers owned by the recorded program; mutating
    #: them outside this class is flagged by ``repro lint``.
    _STACKED_BUFFERS = ("weights", "biases")

    def __init__(self, plan, shape):
        m, dims, length = (int(d) for d in shape)
        self.n_members = m
        self.replays = 0
        self.weights = []  # one stacked (M, F, C_in, K) array per conv step
        self.biases = []   # one stacked (M, F) array per conv step
        self._steps = []
        self._lock = threading.Lock()
        self.x = np.empty((m, dims, length))
        cur, channels, l_cur = self.x, dims, length
        for step in plan:
            op = step[0]
            if op == "conv":
                cur, channels, l_cur = self._build_conv(
                    step[1], step[2], cur, channels, l_cur
                )
            elif op == "relu":
                buf = np.empty_like(cur)
                self._steps.append(self._relu_step(cur, buf))
                cur = buf
            elif op == "pool":
                kernel = step[1]
                l_out = l_cur // kernel
                buf = np.empty((m, channels, l_out))
                self._steps.append(
                    self._pool_step(cur, buf, channels, l_out, kernel)
                )
                cur, l_cur = buf, l_out
            elif op == "upsample":
                # ConvSeriesAE upsamples back to the *input* length
                # (forward passes size=length to the functional op).
                index = np.minimum(np.arange(length) // step[1], l_cur - 1)
                buf = np.empty((m, channels, length))
                self._steps.append(self._upsample_step(cur, buf, index))
                cur, l_cur = buf, length
            else:  # pragma: no cover - plan and builder ship together
                raise ValueError("unknown plan step %r" % (op,))
        self.out = cur

    def _build_conv(self, members, padding, src, c_in, l_cur):
        if len(members) != self.n_members:
            raise ValueError(
                "plan has %d members but the batch stacks %d rows"
                % (len(members), self.n_members)
            )
        w = np.stack([layer.weight.data for layer in members])
        b = np.stack([layer.bias.data for layer in members])
        self.weights.append(w)
        self.biases.append(b)
        f, k = int(w.shape[1]), int(w.shape[3])
        l_in = l_cur + 2 * padding
        if l_in < k:
            raise ValueError(
                "input length %d shorter than kernel %d" % (l_in, k)
            )
        l_out = l_in - k + 1
        # The pad buffer is zeroed once; replays rewrite only the interior
        # (the padding columns stay zero), exactly like the solo pad1d
        # closure replaying into its reused buffer.
        padded = np.zeros((self.n_members, c_in, l_in)) if padding else None
        out = np.empty((self.n_members, f, l_out))
        tmp = np.empty_like(out) if k > 1 else None

        def step(src=src, padded=padded, w=w, b=b, out=out, tmp=tmp,
                 c_in=c_in, k=k, l_out=l_out, padding=padding, l_raw=l_cur):
            if padded is not None:
                padded[:, :, padding : padding + l_raw] = src
                xp = padded
            else:
                xp = src
            # Mirror the solo stable kernel tap by tap: fixed-order
            # accumulation, per-position channel dot, broadcast multiply
            # for the degenerate single-channel case.
            if c_in == 1:
                np.multiply(xp[:, :, 0:l_out],
                            w[:, :, 0, 0][:, :, None], out=out)
            else:
                np.einsum("mfc,mcl->mfl", w[:, :, :, 0],
                          xp[:, :, 0:l_out], optimize=False, out=out)
            for tap in range(1, k):
                if c_in == 1:
                    np.multiply(xp[:, :, tap : tap + l_out],
                                w[:, :, 0, tap][:, :, None], out=tmp)
                else:
                    np.einsum("mfc,mcl->mfl", w[:, :, :, tap],
                              xp[:, :, tap : tap + l_out],
                              optimize=False, out=tmp)
                np.add(out, tmp, out=out)
            out += b[:, :, None]

        self._steps.append(step)
        return out, f, l_out

    @staticmethod
    def _relu_step(src, out):
        def step(src=src, out=out):
            np.multiply(src, src > 0, out=out)

        return step

    @staticmethod
    def _pool_step(src, out, channels, l_out, kernel):
        def step(src=src, out=out, c=channels, l_out=l_out, kernel=kernel):
            m = src.shape[0]
            trimmed = src[:, :, : l_out * kernel].reshape(m, c, l_out, kernel)
            arg = trimmed.argmax(axis=3)
            np.copyto(
                out, np.take_along_axis(trimmed, arg[..., None], axis=3)[..., 0]
            )

        return step

    @staticmethod
    def _upsample_step(src, out, index):
        def step(src=src, out=out, index=index):
            np.take(src, index, axis=2, out=out)

        return step

    def run(self, batch):
        """The stacked reconstruction of ``batch`` (shape ``(M, C_in, L)``).

        Returns the persistent output buffer — consume it before the next
        ``run``.  Replays are serialised by an internal lock (the buffers
        are shared mutable state).
        """
        with self._lock:
            if batch is not self.x:
                np.copyto(self.x, batch)
            for step in self._steps:
                step()
            self.replays += 1
            return self.out

    def refresh(self, modules):
        """Re-copy member weights after a hot-swap or membership change.

        Raises when the new members no longer match the compiled structure
        (e.g. a swapped-in weight of a different shape) — the owning cache
        then rebuilds or declines, it never replays stale weights.
        """
        plan = stacked_score_plan(list(modules))
        if plan is None:
            raise ValueError("members no longer share a stackable plan")
        convs = [step for step in plan if step[0] == "conv"]
        if len(convs) != len(self.weights):
            raise ValueError("member layer structure changed since compile")
        for w, b, step in zip(self.weights, self.biases, convs):
            members = step[1]
            if len(members) != w.shape[0]:
                raise ValueError("member count changed since compile")
            for j, layer in enumerate(members):
                np.copyto(w[j], layer.weight.data)
                np.copyto(b[j], layer.bias.data)

    def __repr__(self):
        return "StackedScoreProgram(members=%d, convs=%d, replays=%d)" % (
            self.n_members, len(self.weights), self.replays
        )
