"""A from-scratch NumPy deep-learning substrate (autograd, layers, optim).

This package replaces PyTorch 1.1 used by the paper.  See DESIGN.md §2 for
the substitution rationale.
"""

from . import functional
from . import tape
from . import batched
from .attention import MultiHeadAttention, PositionalEncoding, TransformerEncoderLayer
from .init import seed
from .layers import (
    Conv1d,
    Conv2d,
    Dropout,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    MaxPool1d,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Upsample1d,
    Upsample2d,
)
from .losses import (
    bce_with_logits,
    gaussian_nll,
    kl_diag_gaussian,
    l1_loss,
    mse_loss,
)
from .optim import SGD, Adam, clip_grad_norm
from .receptive import UNBOUNDED, ReceptiveField
from .recurrent import LSTM, LSTMCell
from .tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "seed",
    "functional",
    "tape",
    "batched",
    "ReceptiveField",
    "UNBOUNDED",
    "Module",
    "Parameter",
    "Linear",
    "Conv1d",
    "Conv2d",
    "MaxPool1d",
    "MaxPool2d",
    "Upsample1d",
    "Upsample2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "Identity",
    "Sequential",
    "Dropout",
    "LayerNorm",
    "LSTM",
    "LSTMCell",
    "MultiHeadAttention",
    "PositionalEncoding",
    "TransformerEncoderLayer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "mse_loss",
    "l1_loss",
    "bce_with_logits",
    "gaussian_nll",
    "kl_diag_gaussian",
]
