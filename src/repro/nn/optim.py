"""Gradient-descent optimisers (SGD with momentum, Adam) and utilities."""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in place so their global l2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for monitoring divergence).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for p in parameters:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self):
        for p in self.parameters:
            p.zero_grad()

    def step(self):  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters, lr=1e-2, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data = p.data - self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._step
        bias2 = 1.0 - b2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
