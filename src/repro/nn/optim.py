"""Gradient-descent optimisers (SGD with momentum, Adam) and utilities.

Both optimisers update parameters strictly in place (``p.data`` keeps its
buffer identity across steps): the training tape's replay closures read
parameter arrays live, and serving-side caches hold views that must not be
orphaned by a step.  Adam's update is fused through two scratch buffers —
the textbook formulation allocates ~6 temporaries per parameter per step —
with an operation order chosen so every value matches the unfused update
bit for bit (in-place ufuncs round exactly like their out-of-place forms).
"""

from __future__ import annotations

import numpy as np

from .tensor import _record_call

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in place so their global l2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for monitoring divergence).  The norm
    uses one BLAS dot per parameter instead of materialising ``p.grad**2``
    temporaries, and scaling multiplies each gradient array in place rather
    than rebinding a fresh one (the training tape and fused Adam rely on
    gradient buffers keeping their identity).

    When called inside a tape recording the clip registers itself as a
    replayable call, so losses that clip internally replay it in order;
    the usual callers clip *outside* the recorded region and record nothing.
    """
    parameters = [p for p in parameters if p.grad is not None]
    _record_call(lambda: clip_grad_norm(parameters, max_norm))
    total = 0.0
    for p in parameters:
        flat = p.grad.reshape(-1)
        total += float(np.dot(flat, flat))
    total = float(np.sqrt(total))
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for p in parameters:
            if p.grad.flags.writeable:
                p.grad *= scale
            else:
                # Adopted read-only gradient view (see Tensor._accumulate_owned).
                p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self):
        # Recorded when a tape is active (see tensor._record_call): an
        # optimiser owned by the loss itself must clear its gradients at
        # the same point of every replayed epoch.
        _record_call(self.zero_grad)
        for p in self.parameters:
            p.zero_grad()

    def step(self):  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters, lr=1e-2, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        _record_call(self.step)
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction, fused in place."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Two scratch buffers per parameter, allocated once; every per-step
        # temporary of the unfused update lives in one of these.
        self._t1 = [np.empty_like(p.data) for p in self.parameters]
        self._t2 = [np.empty_like(p.data) for p in self.parameters]

    def step(self):
        _record_call(self.step)
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._step
        bias2 = 1.0 - b2**self._step
        for p, m, v, t1, t2 in zip(self.parameters, self._m, self._v,
                                   self._t1, self._t2):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            # m <- b1*m + (1-b1)*grad ; v <- b2*v + (1-b2)*grad^2
            m *= b1
            np.multiply(grad, 1.0 - b1, out=t1)
            m += t1
            v *= b2
            np.multiply(grad, grad, out=t1)
            t1 *= 1.0 - b2
            v += t1
            # p <- p - lr * (m/bias1) / (sqrt(v/bias2) + eps)
            np.divide(m, bias1, out=t1)
            t1 *= self.lr
            np.divide(v, bias2, out=t2)
            np.sqrt(t2, out=t2)
            t2 += self.eps
            t1 /= t2
            p.data -= t1
