"""Tape-compiled training fast path: record once, replay without rebuilding.

Eager training rebuilds an identical autograd graph every epoch: fresh
Python closures per op, a topo-sort DFS per backward, new output arrays and
``grad + grad`` copies per accumulation.  For the full-batch reconstruction
loops of Algorithms 1/2 the graph is *structurally constant* across epochs —
only the numbers flowing through it change — so the first step through a
``(model, input shape, target shape)`` combination can record a flat op tape
that later epochs replay:

* the op sequence is captured as ``(tensor, forward)`` pairs in creation
  order, where ``forward(out=None)`` is the *same* closure eager execution
  used (see :mod:`repro.nn.tensor`) — replay therefore runs bit-identical
  arithmetic, in the same op order, with the same reduction orders;
* output buffers are reused: compute ops write through ``out=`` into the
  arrays allocated at record time, view ops rebind views of those stable
  buffers;
* the backward topological order is computed once and cached, and every
  node keeps a persistent gradient buffer that replays accumulate into
  (``np.copyto``/``+=`` instead of ``copy()``/``+``).

Tape v2 extends the recorded stream beyond pure ops: stochastic primitives
(dropout masks, reparameterisation noise) draw into closure-persistent
buffers *inside* their recorded closures, so replays redraw from the
module's own generator in eager draw order instead of replaying stale
constants; softmax recomputes its max shift per replay; and recordings may
contain whole optimisation sub-steps — ``zero_grad``/``step``/inner
``backward`` calls (the discriminator update of an adversarial loss) are
captured as call/backward events interleaved with the ops and replayed at
their recorded positions.  That unlocks compiled fits for the
recurrent/attention/VAE/GAN baselines that PR 5 had to decline.

The tape still refuses (``failed``) whenever an op bakes run-time data into
the recorded graph (see ``_poison_tape``), and :func:`training_tape`
declines to tape at all under ``no_grad``, under
:func:`repro.nn.functional.stable_kernels`, or for modules that are not
structurally replayable (:func:`module_tape_safe`).  Everything declined
falls back to eager execution, which remains the reference semantics.

Inference tapes (this PR's grad-free mode).  Serving forwards run under
``no_grad`` + ``stable_kernels`` — exactly the combination
:func:`training_tape` declines — yet they are even more replayable than
training steps: no backward, no optimizer events, no stochastic draws.
:class:`ScoreTape` records that score forward once per ``(module, input
shape)`` and replays just the op closures with persistent output buffers;
because recording runs *inside* ``no_grad()``/``stable_kernels()``, the
closures bake in the length-stable serving arithmetic and replay it
bit-identically.  :func:`score_tape` is the shape-keyed cache (invalidated
when a parameter's backing array is hot-swapped), honouring the same
``REPRO_EAGER`` opt-out as the training tape.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from . import layers
from .attention import (
    MultiHeadAttention,
    PositionalEncoding,
    TransformerEncoderLayer,
)
from .functional import stable_kernels, stable_kernels_active
from .losses import mse_loss
from .recurrent import LSTM, LSTMCell
from .tensor import Tensor, _push_tape, _topo_order, is_grad_enabled, no_grad

__all__ = [
    "TrainStepTape",
    "training_tape",
    "release_tapes",
    "module_tape_safe",
    "tape_enabled",
    "set_tape_enabled",
    "ScoreTape",
    "score_tape",
    "release_score_tapes",
]

# Process-wide opt-out: REPRO_EAGER=1 (or set_tape_enabled(False) / the CLI
# --eager flag) forces every fit through the eager reference path.
_ENABLED = [os.environ.get("REPRO_EAGER", "") not in ("1", "true", "yes")]

#: Maximum recorded tapes kept per model (distinct input/target shapes).
_MAX_TAPES_PER_MODEL = 4

# Modules whose forward is known to lower entirely onto replayable
# primitives.  Matched by exact type: a subclass may override forward with
# arbitrary Python, so it must opt in via its own ``tape_safe`` attribute.
_SAFE_LEAF_TYPES = frozenset((
    layers.Linear,
    layers.Conv1d,
    layers.Conv2d,
    layers.MaxPool1d,
    layers.MaxPool2d,
    layers.Upsample1d,
    layers.Upsample2d,
    layers.ReLU,
    layers.Tanh,
    layers.Sigmoid,
    layers.LeakyReLU,
    layers.Identity,
    layers.LayerNorm,
    # Dropout draws its mask through the tape's buffer protocol (see
    # functional.dropout), so active dropout replays faithfully now.
    layers.Dropout,
    # The recurrent/attention stacks lower onto pure primitives: LSTM
    # unrolls with fresh zero-state constants per shape, attention's
    # softmax is a recorded primitive, and positional encodings add a
    # construction-time constant table.
    LSTM,
    LSTMCell,
    MultiHeadAttention,
    PositionalEncoding,
    TransformerEncoderLayer,
))


def _child_modules(module):
    for value in vars(module).values():
        if isinstance(value, layers.Module):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, layers.Module):
                    yield item


def module_tape_safe(module):
    """Whether ``module``'s forward replays faithfully from a recorded tape.

    True for the structured primitives of :mod:`repro.nn.layers` (their
    forwards are pure traced ops whose only data-independent branching is on
    shapes, which key the tape cache), for the recurrent/attention stacks,
    for :class:`Sequential` chains of safe children, and for composite
    modules that declare ``tape_safe = True`` *and* contain only safe
    children.  Active dropout is safe too: its mask is drawn through the
    tape's persistent-buffer protocol, so replays redraw from the module's
    generator exactly like eager epochs.  Everything else (unknown user
    modules) answers False and trains eagerly.
    """
    if type(module) is layers.Sequential:
        return all(module_tape_safe(child) for child in module)
    if type(module) in _SAFE_LEAF_TYPES:
        return True
    if getattr(module, "tape_safe", False):
        return all(module_tape_safe(child) for child in _child_modules(module))
    return False


def tape_enabled():
    """Whether tape compilation is enabled process-wide."""
    return _ENABLED[0]


def set_tape_enabled(flag):
    """Toggle tape compilation (True by default; ``REPRO_EAGER=1`` disables).

    Returns the previous setting so callers can restore it.
    """
    previous = _ENABLED[0]
    _ENABLED[0] = bool(flag)
    return previous


class _BackwardEvent:
    """A ``Tensor.backward`` call captured inside a recording.

    The inner optimisation step of an adversarial loss (BeatGAN's
    discriminator update) runs a full backward mid-forward.  Replay seeds
    the recorded root with the recorded seed gradient and re-runs the
    cached reversed topo — after clearing the *non-leaf* gradients of the
    sub-graph.  Leaves (parameters) keep accumulating across events: their
    lifecycle is governed by the recorded ``zero_grad`` calls, exactly as
    in the eager loop.
    """

    __slots__ = ("root", "seed", "reversed_topo", "resettable")

    def __init__(self, root, seed, topo):
        self.root = root
        self.seed = np.array(seed, dtype=np.float64)
        self.reversed_topo = list(reversed(topo))
        # _make only installs _backward on nodes that require grad and have
        # parents; leaves keep None, which is the non-leaf criterion.
        self.resettable = [n for n in topo if n._backward is not None]

    def replay(self):
        for node in self.resettable:
            node.grad = None
        self.root._accumulate(self.seed)
        for node in self.reversed_topo:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


class TrainStepTape:
    """One recorded forward+loss+backward, replayable with fresh data.

    The first :meth:`step` call *is* a normal eager training step — it runs
    the model's forward and the loss under a recording context and then the
    standard backward, so recording never changes results.  Later
    :meth:`step` calls refresh the input/target buffers and replay the
    captured entry stream: op closures, side-effect calls (inner
    ``zero_grad``/``step``/clip) and backward events, in recorded order.
    The caller owns the *outer* ``zero_grad``/clip/optimizer.step, exactly
    as in the eager loop.

    ``loss_fn``, when given, replaces the default ``model(x)`` +
    ``mse_loss(prediction, target)`` program: it receives the tape's input
    Tensor and returns either the loss Tensor or a ``(loss, prediction)``
    pair.
    """

    def __init__(self, model, loss_fn=None):
        self.model = model
        self.loss_fn = loss_fn
        self.recorded = False
        self.failed = None  # reason string once poisoned
        self.replays = 0
        self.x = None
        self.target = None
        self._nodes = []      # op outputs in record order (forward-only replay)
        self._forwards = []
        self._entries = []    # full stream: ("op",...)/("call",...)/("bwd",...)
        self._topo = None
        self._resettable = None
        self._reversed_topo = None
        self._loss = None
        self._prediction = None
        self._seed_grad = None

    # ------------------------------------------------------------------ #
    # recorder callbacks (invoked from repro.nn.tensor)
    # ------------------------------------------------------------------ #
    def _add(self, tensor, forward):
        self._nodes.append(tensor)
        self._forwards.append(forward)
        self._entries.append(("op", tensor, forward))

    def _add_call(self, fn):
        self._entries.append(("call", fn, None))

    def _add_backward(self, root, seed, topo):
        self._entries.append(("bwd", _BackwardEvent(root, seed, topo), None))

    def _poison(self, reason):
        self.failed = reason

    # ------------------------------------------------------------------ #
    def step(self, inputs, target):
        """Run one training forward+backward (recording on the first call).

        Returns the prediction array (the tape's reused output buffer — copy
        before storing it across steps).
        """
        if not self.recorded:
            return self._record_step(inputs, target)
        return self._replay_step(inputs, target)

    def _record_step(self, inputs, target):
        self.x = Tensor(np.array(inputs, dtype=np.float64))
        if self.loss_fn is not None:
            self.target = None
        elif target is inputs:
            self.target = self.x.data
        else:
            self.target = np.array(target, dtype=np.float64)
        previous = _push_tape(self)
        try:
            if self.loss_fn is not None:
                result = self.loss_fn(self.x)
                if isinstance(result, tuple):
                    loss, prediction = result
                else:
                    loss, prediction = result, None
            else:
                prediction = self.model(self.x)
                loss = mse_loss(prediction, self.target)
        finally:
            _push_tape(previous)
        self._prediction, self._loss = prediction, loss
        # The recording step is epoch one: run the eager backward, but
        # through the shared topo helper so the order we cache is the order
        # we just executed.  (This outer backward runs after the tape is
        # popped, so it is not itself captured as a backward event.)
        topo = _topo_order(loss)
        self._seed_grad = np.ones_like(loss.data)
        loss._accumulate(self._seed_grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
        self._topo = topo
        self._reversed_topo = list(reversed(topo))
        self._resettable = [n for n in topo if n._backward is not None]
        # Hand each node its final gradient array as the persistent
        # accumulation buffer for replays.  Nodes whose gradient was adopted
        # from a backward closure (``_accumulate_owned``) are skipped: the
        # array belongs to the closure, not the node.  Event sub-graphs
        # (the inner backward of an adversarial loss) get buffers too —
        # shared leaves are visited once thanks to the buf-is-None guard.
        self._install_grad_buffers(topo)
        for kind, payload, __ in self._entries:
            if kind == "bwd":
                self._install_grad_buffers(payload.reversed_topo)
        self.recorded = True
        return None if prediction is None else prediction.data

    def _install_grad_buffers(self, nodes):
        for node in nodes:
            if (node.grad is not None and node._grad_buf is None
                    and not node._grad_owned):
                node._grad_buf = node.grad

    def _replay_step(self, inputs, target):
        self._refresh_inputs(inputs, target)
        for kind, payload, forward in self._entries:
            if kind == "op":
                payload.data = forward(payload.data)
            elif kind == "call":
                payload()
            else:
                payload.replay()
        # Reset only non-leaf gradients: parameter grads are governed by
        # the caller's zero_grad (outer params) or by recorded zero_grad
        # calls (an inner optimiser's params, which must keep their
        # event-accumulated gradients for the outer backward to add to,
        # exactly as eager execution would).
        for node in self._resettable:
            node.grad = None
        self._loss._accumulate(self._seed_grad)
        for node in self._reversed_topo:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
        self.replays += 1
        return None if self._prediction is None else self._prediction.data

    def _refresh_inputs(self, inputs, target):
        xbuf = self.x.data
        if inputs is not xbuf:
            np.copyto(xbuf, np.asarray(inputs, dtype=np.float64))
        if (self.target is not None and self.target is not xbuf
                and target is not None and target is not inputs):
            np.copyto(self.target, np.asarray(target, dtype=np.float64))

    def _replay_forward(self, inputs, target):
        self._refresh_inputs(inputs, target)
        nodes = self._nodes
        forwards = self._forwards
        for i in range(len(nodes)):
            node = nodes[i]
            node.data = forwards[i](node.data)

    def forward(self, inputs, target=None):
        """Replay only the forward pass (the post-training evaluation
        forward of ``train_reconstruction``) and return the prediction
        buffer.  Ops only: recorded calls and backward events are skipped,
        so no parameter is touched."""
        self._replay_forward(inputs, target)
        return self._prediction.data

    @property
    def loss_value(self):
        """Loss of the most recent step (recorded or replayed)."""
        return float(self._loss.data)

    def __repr__(self):
        state = "failed: %s" % self.failed if self.failed else (
            "recorded, %d replays" % self.replays if self.recorded
            else "unrecorded"
        )
        return "TrainStepTape(ops=%d, %s)" % (len(self._nodes), state)


def training_tape(model, inputs, target, loss_fn=None, modules=None):
    """The model's :class:`TrainStepTape` for this (shape, mode), or None.

    None means "train eagerly": tape compilation disabled, grad disabled,
    stable kernels active (serving arithmetic must never leak into a
    recorded fit), the model is not structurally replayable, or a previous
    recording for this key was poisoned.

    ``loss_fn`` is forwarded to the tape (see :class:`TrainStepTape`).
    ``modules``, when given, is the full list of modules the recorded
    program touches — losses that involve more than the model itself (an
    adversarial loss also runs its discriminator) list them all so the
    safety verdict covers every recorded forward.
    """
    if not _ENABLED[0] or not is_grad_enabled() or stable_kernels_active():
        return None
    state = model.__dict__
    safe = state.get("_tape_safe")
    if safe is None:
        checked = (model,) if modules is None else tuple(modules)
        safe = state["_tape_safe"] = all(module_tape_safe(m) for m in checked)
    if not safe:
        return None
    cache = state.get("_tape_cache")
    if cache is None:
        cache = state["_tape_cache"] = {}
    key = (np.shape(inputs),
           None if (target is inputs or target is None) else np.shape(target))
    tape = cache.get(key)
    if tape is None:
        if len(cache) >= _MAX_TAPES_PER_MODEL:
            cache.pop(next(iter(cache)))
        tape = cache[key] = TrainStepTape(model, loss_fn=loss_fn)
    if tape.failed:
        return None
    return tape


def release_tapes(model):
    """Drop ``model``'s recorded tapes (and their retained graphs/buffers).

    A recorded tape keeps every intermediate activation, gradient buffer,
    and kernel scratch array of one training graph alive — tens of MB for a
    long-series fit.  Training loops that keep their fitted model around
    (RAE/RDAE store it for scoring and persistence) call this once the fit
    finishes; the next fit simply re-records.  Recorded *score* tapes are
    dropped too — a post-fit module has new weights per fit, so stale
    inference recordings must not outlive the fit either.  The
    ``_tape_safe`` verdict is kept — it is a property of the module
    structure, not of a recording.
    """
    model.__dict__.pop("_tape_cache", None)
    model.__dict__.pop("_score_tape_cache", None)


# --------------------------------------------------------------------- #
# grad-free inference tapes (the compiled scoring path)
# --------------------------------------------------------------------- #

#: Maximum recorded score tapes kept per module (distinct input shapes).
#: Serving slices come in a handful of aligned lengths (full window, the
#: receptive-field tail, the splice head), so a small bound fits the
#: working set while still evicting pathological shape churn.
_MAX_SCORE_TAPES_PER_MODULE = 6


def _weights_token(module):
    """Identity token of the arrays backing ``module``'s parameters.

    Hot-swapping a parameter's value *in place* (``np.copyto``) keeps the
    token — the recorded closures read ``weight.data`` live, so in-place
    swaps replay correctly without re-recording.  *Rebinding* ``.data`` to
    a fresh array (weight hot-swap via assignment, ``load_state_dict``
    implementations that rebind) changes the token and invalidates the
    recording.
    """
    return tuple(id(p.data) for __, p in module.named_parameters())


class ScoreTape:
    """One recorded no-grad score forward, replayable with fresh inputs.

    The first :meth:`run` call records ``module(x)`` under ``no_grad()`` +
    ``stable_kernels()`` — the exact serving configuration — so the
    captured closures ARE the ops the eager scoring path would have run,
    in the same order, with the same length-stable arithmetic.  Later
    :meth:`run` calls refresh the persistent input buffer and replay the
    op stream: no graph construction, no backward bookkeeping, no fresh
    output arrays.  Bit-identity to the eager stable forward is therefore
    by construction, not by approximation.

    Replays are serialised by an internal lock: a tape's buffers are
    shared mutable state, and two router worker threads may reach the
    same module's tape (replays are short; contention only arises when
    two groups genuinely share a module).
    """

    def __init__(self, module):
        self.module = module
        self.recorded = False
        self.failed = None  # reason string once poisoned
        self.replays = 0
        self.x = None
        self._nodes = []
        self._forwards = []
        self._out = None
        self._lock = threading.Lock()

    # -- recorder callbacks (invoked from repro.nn.tensor) -------------- #
    def _add(self, tensor, forward):
        self._nodes.append(tensor)
        self._forwards.append(forward)

    def _add_call(self, fn):  # pragma: no cover - defensive
        self.failed = "side-effect call recorded inside a score forward"

    def _add_backward(self, root, seed, topo):  # pragma: no cover
        self.failed = "backward recorded inside a score forward"

    def _poison(self, reason):
        self.failed = reason

    # ------------------------------------------------------------------ #
    def run(self, array):
        """The module's stable-forward output for ``array`` (its shape must
        match the recording's).  Returns the persistent output buffer —
        copy before storing it across calls."""
        with self._lock:
            if not self.recorded:
                return self._record(array)
            xbuf = self.x.data
            if array is not xbuf:
                np.copyto(xbuf, array)
            nodes = self._nodes
            forwards = self._forwards
            for i in range(len(nodes)):
                node = nodes[i]
                node.data = forwards[i](node.data)
            self.replays += 1
            return self._out.data

    def _record(self, array):
        # The recording run IS a normal eager serving forward — the hooks
        # only observe, so even a recording that ends up poisoned has
        # produced the correct output for this call.
        self.x = Tensor(np.array(array, dtype=np.float64))
        previous = _push_tape(self)
        try:
            with no_grad(), stable_kernels():
                out = self.module(self.x)
        finally:
            _push_tape(previous)
        self._out = out
        self.recorded = True
        return out.data

    def __repr__(self):
        state = "failed: %s" % self.failed if self.failed else (
            "recorded, %d replays" % self.replays if self.recorded
            else "unrecorded"
        )
        return "ScoreTape(ops=%d, %s)" % (len(self._nodes), state)


def score_tape(module, shape):
    """The cached :class:`ScoreTape` for ``(module, input shape)``.

    Returns ``(tape, event)``.  ``tape`` is None when the compiled path
    must decline — tape compilation disabled (``REPRO_EAGER``), the module
    not structurally replayable, or this recording poisoned — and the
    caller falls back to the eager stable forward.  ``event`` reports what
    the cache did (``"hit"``/``"miss"``/``"invalidated"``) for the
    serving layer's program-cache counters, or None when the lookup never
    consulted the cache; an ``"invalidated"`` event means a parameter's
    backing array was hot-swapped since the recording, which re-records.
    """
    if not _ENABLED[0]:
        return None, None
    state = module.__dict__
    safe = state.get("_tape_safe")
    if safe is None:
        safe = state["_tape_safe"] = module_tape_safe(module)
    if not safe:
        return None, None
    cache = state.get("_score_tape_cache")
    if cache is None:
        cache = state["_score_tape_cache"] = {}
    token = _weights_token(module)
    key = tuple(int(d) for d in shape)
    entry = cache.get(key)
    event = "hit"
    if entry is not None and entry[0] != token:
        cache.pop(key, None)
        entry = None
        event = "invalidated"
    if entry is None:
        if event == "hit":
            event = "miss"
        if len(cache) >= _MAX_SCORE_TAPES_PER_MODULE:
            cache.pop(next(iter(cache)))
        entry = cache[key] = (token, ScoreTape(module))
    tape = entry[1]
    if tape.failed:
        return None, event
    return tape, event


def release_score_tapes(model):
    """Drop ``model``'s recorded inference tapes (buffers included)."""
    model.__dict__.pop("_score_tape_cache", None)
