"""Tape-compiled training fast path: record once, replay without rebuilding.

Eager training rebuilds an identical autograd graph every epoch: fresh
Python closures per op, a topo-sort DFS per backward, new output arrays and
``grad + grad`` copies per accumulation.  For the full-batch reconstruction
loops of Algorithms 1/2 the graph is *structurally constant* across epochs —
only the numbers flowing through it change — so the first step through a
``(model, input shape, target shape)`` combination can record a flat op tape
that later epochs replay:

* the op sequence is captured as ``(tensor, forward)`` pairs in creation
  order, where ``forward(out=None)`` is the *same* closure eager execution
  used (see :mod:`repro.nn.tensor`) — replay therefore runs bit-identical
  arithmetic, in the same op order, with the same reduction orders;
* output buffers are reused: compute ops write through ``out=`` into the
  arrays allocated at record time, view ops rebind views of those stable
  buffers;
* the backward topological order is computed once and cached, and every
  node keeps a persistent gradient buffer that replays accumulate into
  (``np.copyto``/``+=`` instead of ``copy()``/``+``).

The tape refuses (``failed``) whenever an op bakes run-time data into the
recorded graph (softmax, active dropout — see ``_poison_tape``), and
:func:`training_tape` declines to tape at all under ``no_grad``, under
:func:`repro.nn.functional.stable_kernels`, or for modules that are not
structurally replayable (:func:`module_tape_safe`).  Everything declined
falls back to eager execution, which remains the reference semantics.
"""

from __future__ import annotations

import os

import numpy as np

from . import layers
from .functional import stable_kernels_active
from .losses import mse_loss
from .tensor import Tensor, _push_tape, _topo_order, is_grad_enabled

__all__ = [
    "TrainStepTape",
    "training_tape",
    "release_tapes",
    "module_tape_safe",
    "tape_enabled",
    "set_tape_enabled",
]

# Process-wide opt-out: REPRO_EAGER=1 (or set_tape_enabled(False) / the CLI
# --eager flag) forces every fit through the eager reference path.
_ENABLED = [os.environ.get("REPRO_EAGER", "") not in ("1", "true", "yes")]

#: Maximum recorded tapes kept per model (distinct input/target shapes).
_MAX_TAPES_PER_MODEL = 4

# Modules whose forward is known to lower entirely onto replayable
# primitives.  Matched by exact type: a subclass may override forward with
# arbitrary Python, so it must opt in via its own ``tape_safe`` attribute.
_SAFE_LEAF_TYPES = frozenset((
    layers.Linear,
    layers.Conv1d,
    layers.Conv2d,
    layers.MaxPool1d,
    layers.MaxPool2d,
    layers.Upsample1d,
    layers.Upsample2d,
    layers.ReLU,
    layers.Tanh,
    layers.Sigmoid,
    layers.LeakyReLU,
    layers.Identity,
    layers.LayerNorm,
))


def _child_modules(module):
    for value in vars(module).values():
        if isinstance(value, layers.Module):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, layers.Module):
                    yield item


def module_tape_safe(module):
    """Whether ``module``'s forward replays faithfully from a recorded tape.

    True for the structured primitives of :mod:`repro.nn.layers` (their
    forwards are pure traced ops whose only data-independent branching is on
    shapes, which key the tape cache), for :class:`Sequential` chains of
    safe children, and for composite modules that declare ``tape_safe =
    True`` *and* contain only safe children.  Dropout is safe only when
    inactive — an active mask is resampled per call, which a replay cannot
    reproduce.  Everything else (recurrent/attention baselines, unknown
    user modules) answers False and trains eagerly.
    """
    if isinstance(module, layers.Dropout):
        return module.p <= 0.0 or not module.training
    if type(module) is layers.Sequential:
        return all(module_tape_safe(child) for child in module)
    if type(module) in _SAFE_LEAF_TYPES:
        return True
    if getattr(module, "tape_safe", False):
        return all(module_tape_safe(child) for child in _child_modules(module))
    return False


def tape_enabled():
    """Whether tape compilation is enabled process-wide."""
    return _ENABLED[0]


def set_tape_enabled(flag):
    """Toggle tape compilation (True by default; ``REPRO_EAGER=1`` disables).

    Returns the previous setting so callers can restore it.
    """
    previous = _ENABLED[0]
    _ENABLED[0] = bool(flag)
    return previous


class TrainStepTape:
    """One recorded forward+loss+backward, replayable with fresh data.

    The first :meth:`step` call *is* a normal eager training step — it runs
    the model's forward and ``mse_loss`` under a recording context and then
    the standard backward, so recording never changes results.  Later
    :meth:`step` calls refresh the input/target buffers and replay the
    captured closures.  The caller owns ``zero_grad``/clip/optimizer.step,
    exactly as in the eager loop.
    """

    def __init__(self, model):
        self.model = model
        self.recorded = False
        self.failed = None  # reason string once poisoned
        self.replays = 0
        self.x = None
        self.target = None
        self._nodes = []
        self._forwards = []
        self._topo = None
        self._reversed_topo = None
        self._loss = None
        self._prediction = None
        self._seed_grad = None

    # ------------------------------------------------------------------ #
    # recorder callbacks (invoked from repro.nn.tensor._record)
    # ------------------------------------------------------------------ #
    def _add(self, tensor, forward):
        self._nodes.append(tensor)
        self._forwards.append(forward)

    def _poison(self, reason):
        self.failed = reason

    # ------------------------------------------------------------------ #
    def step(self, inputs, target):
        """Run one training forward+backward (recording on the first call).

        Returns the prediction array (the tape's reused output buffer — copy
        before storing it across steps).
        """
        if not self.recorded:
            return self._record_step(inputs, target)
        return self._replay_step(inputs, target)

    def _record_step(self, inputs, target):
        self.x = Tensor(np.array(inputs, dtype=np.float64))
        if target is inputs:
            self.target = self.x.data
        else:
            self.target = np.array(target, dtype=np.float64)
        previous = _push_tape(self)
        try:
            prediction = self.model(self.x)
            loss = mse_loss(prediction, self.target)
        finally:
            _push_tape(previous)
        self._prediction, self._loss = prediction, loss
        # The recording step is epoch one: run the eager backward, but
        # through the shared topo helper so the order we cache is the order
        # we just executed.
        topo = _topo_order(loss)
        self._seed_grad = np.ones_like(loss.data)
        loss._accumulate(self._seed_grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
        self._topo = topo
        self._reversed_topo = list(reversed(topo))
        # Hand each node its final gradient array as the persistent
        # accumulation buffer for replays.  Nodes whose gradient was adopted
        # from a backward closure (``_accumulate_owned``) are skipped: the
        # array belongs to the closure, not the node.
        for node in topo:
            if (node.grad is not None and node._grad_buf is None
                    and not node._grad_owned):
                node._grad_buf = node.grad
        self.recorded = True
        return prediction.data

    def _replay_step(self, inputs, target):
        self._replay_forward(inputs, target)
        for node in self._topo:
            node.grad = None
        self._loss._accumulate(self._seed_grad)
        for node in self._reversed_topo:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
        self.replays += 1
        return self._prediction.data

    def _replay_forward(self, inputs, target):
        xbuf = self.x.data
        if inputs is not xbuf:
            np.copyto(xbuf, np.asarray(inputs, dtype=np.float64))
        if self.target is not xbuf and target is not None and target is not inputs:
            np.copyto(self.target, np.asarray(target, dtype=np.float64))
        nodes = self._nodes
        forwards = self._forwards
        for i in range(len(nodes)):
            node = nodes[i]
            node.data = forwards[i](node.data)

    def forward(self, inputs, target=None):
        """Replay only the forward pass (the post-training evaluation
        forward of ``train_reconstruction``) and return the prediction
        buffer."""
        self._replay_forward(inputs, target)
        return self._prediction.data

    @property
    def loss_value(self):
        """Loss of the most recent step (recorded or replayed)."""
        return float(self._loss.data)

    def __repr__(self):
        state = "failed: %s" % self.failed if self.failed else (
            "recorded, %d replays" % self.replays if self.recorded
            else "unrecorded"
        )
        return "TrainStepTape(ops=%d, %s)" % (len(self._nodes), state)


def training_tape(model, inputs, target):
    """The model's :class:`TrainStepTape` for this (shape, mode), or None.

    None means "train eagerly": tape compilation disabled, grad disabled,
    stable kernels active (serving arithmetic must never leak into a
    recorded fit), the model is not structurally replayable, or a previous
    recording for this key was poisoned.
    """
    if not _ENABLED[0] or not is_grad_enabled() or stable_kernels_active():
        return None
    state = model.__dict__
    safe = state.get("_tape_safe")
    if safe is None:
        safe = state["_tape_safe"] = module_tape_safe(model)
    if not safe:
        return None
    cache = state.get("_tape_cache")
    if cache is None:
        cache = state["_tape_cache"] = {}
    key = (np.shape(inputs), None if target is inputs else np.shape(target))
    tape = cache.get(key)
    if tape is None:
        if len(cache) >= _MAX_TAPES_PER_MODEL:
            cache.pop(next(iter(cache)))
        tape = cache[key] = TrainStepTape(model)
    if tape.failed:
        return None
    return tape


def release_tapes(model):
    """Drop ``model``'s recorded tapes (and their retained graphs/buffers).

    A recorded tape keeps every intermediate activation, gradient buffer,
    and kernel scratch array of one training graph alive — tens of MB for a
    long-series fit.  Training loops that keep their fitted model around
    (RAE/RDAE store it for scoring and persistence) call this once the fit
    finishes; the next fit simply re-records.  The ``_tape_safe`` verdict is
    kept — it is a property of the module structure, not of a recording.
    """
    model.__dict__.pop("_tape_cache", None)
