"""Command-line interface: run any method on a CSV time series.

Usage::

    python -m repro list-methods
    python -m repro detect --method RDAE --input series.csv --output scores.csv
    python -m repro detect --method RAE --input series.csv --labels-column label
    python -m repro demo --method RAE
    python -m repro stream --method RAE --input - --train 200 --window 128

``detect`` reads a CSV whose columns are the series dimensions (an optional
header row is auto-detected), computes per-observation outlier scores, and
writes/prints them.  When a labels column is named, PR/ROC AUC are reported.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .datasets import load_dataset
from .eval import available_methods, make_detector
from .metrics import pr_auc, roc_auc

__all__ = ["main", "build_parser", "read_series_csv", "write_scores_csv"]


def read_series_csv(path, labels_column=None):
    """Load a CSV into ``(values, labels_or_None)``.

    The first row is treated as a header when any of its cells is not
    numeric.  All non-label columns become series dimensions.  ``path`` may
    be ``"-"`` to read from stdin (the streaming idiom).
    """
    if str(path) == "-":
        lines = [line.strip() for line in sys.stdin if line.strip()]
    else:
        with open(path) as handle:
            lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ValueError("empty CSV: %s" % path)
    first = lines[0].split(",")

    def numeric(cell):
        try:
            float(cell)
            return True
        except ValueError:
            return False

    has_header = not all(numeric(cell) for cell in first)
    header = [cell.strip() for cell in first] if has_header else None
    rows = lines[1:] if has_header else lines
    data = np.array([[float(c) for c in row.split(",")] for row in rows])

    labels = None
    if labels_column is not None:
        if header is None:
            index = int(labels_column)
        elif labels_column in header:
            index = header.index(labels_column)
        else:
            raise KeyError("no column %r in header %s" % (labels_column, header))
        labels = data[:, index].astype(int)
        data = np.delete(data, index, axis=1)
    return data, labels


def write_scores_csv(path, scores):
    with open(path, "w") as handle:
        handle.write("score\n")
        for value in scores:
            handle.write("%.10g\n" % value)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robust & explainable time series outlier detection "
                    "(Kieu et al., ICDE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-methods", help="print the registered method names")

    detect = sub.add_parser("detect", help="score a CSV time series")
    detect.add_argument("--method", default="RDAE",
                        help="method name (see list-methods)")
    detect.add_argument("--input", required=True, help="input CSV path")
    detect.add_argument("--output", help="output CSV path (default: stdout)")
    detect.add_argument("--labels-column",
                        help="name (or index for headerless CSVs) of a 0/1 "
                             "ground-truth column; enables AUC reporting")
    detect.add_argument("--top", type=int, default=5,
                        help="print the top-K scored positions")

    demo = sub.add_parser("demo", help="run a method on a built-in surrogate")
    demo.add_argument("--method", default="RAE")
    demo.add_argument("--dataset", default="S5")
    demo.add_argument("--scale", type=float, default=0.15)

    stream = sub.add_parser(
        "stream",
        help="train on the head of a series, then score the rest point by "
             "point over a sliding window",
    )
    stream.add_argument("--method", default="RAE",
                        help="method name (see list-methods)")
    stream.add_argument("--input", required=True,
                        help="input CSV path, or '-' for stdin")
    stream.add_argument("--train", type=int, default=None,
                        help="observations read from the head of the input "
                             "to fit the detector (default: 200)")
    stream.add_argument("--window", type=int, default=128,
                        help="sliding-window capacity for streamed scoring")
    stream.add_argument("--model",
                        help="load a fitted RAE/RDAE from this .npz instead "
                             "of training on the head (see repro.core"
                             ".save_detector); --train is then ignored")
    stream.add_argument("--chunk", type=int, default=1,
                        help="arrivals scored per engine call (micro-batching)")
    stream.add_argument("--output", help="output CSV path (default: stdout)")
    return parser


def _run_detect(args):
    values, labels = read_series_csv(args.input, args.labels_column)
    detector = make_detector(args.method)
    scores = detector.fit_score(values)
    if args.output:
        write_scores_csv(args.output, scores)
        print("wrote %d scores to %s" % (len(scores), args.output))
    else:
        for value in scores:
            print("%.10g" % value)
    top = np.argsort(-scores)[: args.top]
    print("top-%d positions: %s" % (args.top, sorted(top.tolist())),
          file=sys.stderr)
    if labels is not None and 0 < labels.sum() < labels.size:
        print("PR-AUC  = %.4f" % pr_auc(labels, scores), file=sys.stderr)
        print("ROC-AUC = %.4f" % roc_auc(labels, scores), file=sys.stderr)
    return 0


def _iter_csv_rows(handle):
    """Yield float rows from a CSV stream lazily, skipping a header row."""
    first = True
    for line in handle:
        line = line.strip()
        if not line:
            continue
        cells = line.split(",")
        if first:
            first = False
            try:
                [float(c) for c in cells]
            except ValueError:
                continue  # header row
        yield np.array([float(c) for c in cells])


def _run_stream(args):
    """Live streaming loop: scores are emitted (and flushed) as arrivals are
    scored, so an open-ended pipe on stdin produces output continuously and
    memory stays bounded by the window — never by the stream length."""
    from .core import load_detector
    from .stream import StreamScorer

    source = sys.stdin if str(args.input) == "-" else open(args.input)
    try:
        rows = _iter_csv_rows(source)
        if args.model:
            detector = load_detector(args.model)
            head_rows = []
        else:
            head = args.train if args.train is not None else 200
            head_rows = [row for __, row in zip(range(max(head, 2)), rows)]
            if len(head_rows) < 2:
                raise ValueError(
                    "need at least 2 observations to train on; got %d "
                    "(is the input empty?)" % len(head_rows)
                )
            detector = make_detector(args.method)
            detector.fit(np.stack(head_rows))
        scorer = StreamScorer(detector, window=args.window)
        # Seed the window with the training tail so the first streamed
        # points have context (no scoring pass runs for the seed).
        if head_rows:
            scorer.seed(np.stack(head_rows[-args.window :]))

        out = open(args.output, "w") if args.output else sys.stdout
        streamed = 0
        try:
            if args.output:
                out.write("index,score\n")
            # A chunk larger than the window would evict (and zero-score)
            # its own oldest points; clamp so every line is a real score.
            chunk = int(np.clip(args.chunk, 1, args.window))
            pending = []
            index = len(head_rows)

            def emit(batch):
                nonlocal streamed, index
                for score in scorer.push_many(np.stack(batch)):
                    out.write("%d,%.10g\n" % (index, score))
                    index += 1
                    streamed += 1
                out.flush()

            for row in rows:
                pending.append(row)
                if len(pending) >= chunk:
                    emit(pending)
                    pending = []
            if pending:
                emit(pending)
        finally:
            if args.output:
                out.close()
        if args.output:
            print("wrote %d streamed scores to %s" % (streamed, args.output))
        print("streamed %d points (window=%d, method=%s)"
              % (streamed, args.window, detector.name), file=sys.stderr)
    finally:
        if source is not sys.stdin:
            source.close()
    return 0


def _run_demo(args):
    dataset = load_dataset(args.dataset, scale=args.scale)
    print(dataset.summary())
    ts = dataset[0]
    detector = make_detector(args.method)
    scores = detector.fit_score(ts)
    print("%s on %s: PR-AUC = %.4f, ROC-AUC = %.4f" % (
        args.method, ts.name, pr_auc(ts.labels, scores),
        roc_auc(ts.labels, scores),
    ))
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.command == "list-methods":
        for name in available_methods():
            print(name)
        return 0
    if args.command == "detect":
        return _run_detect(args)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "stream":
        return _run_stream(args)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
