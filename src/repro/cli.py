"""Command-line interface: run any method on a CSV time series.

Usage::

    python -m repro list-methods
    python -m repro detect --method RDAE --input series.csv --output scores.csv
    python -m repro detect --method RAE --input series.csv --labels-column label
    python -m repro demo --method RAE

``detect`` reads a CSV whose columns are the series dimensions (an optional
header row is auto-detected), computes per-observation outlier scores, and
writes/prints them.  When a labels column is named, PR/ROC AUC are reported.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .datasets import load_dataset
from .eval import available_methods, make_detector
from .metrics import pr_auc, roc_auc

__all__ = ["main", "build_parser", "read_series_csv", "write_scores_csv"]


def read_series_csv(path, labels_column=None):
    """Load a CSV into ``(values, labels_or_None)``.

    The first row is treated as a header when any of its cells is not
    numeric.  All non-label columns become series dimensions.
    """
    with open(path) as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ValueError("empty CSV: %s" % path)
    first = lines[0].split(",")

    def numeric(cell):
        try:
            float(cell)
            return True
        except ValueError:
            return False

    has_header = not all(numeric(cell) for cell in first)
    header = [cell.strip() for cell in first] if has_header else None
    rows = lines[1:] if has_header else lines
    data = np.array([[float(c) for c in row.split(",")] for row in rows])

    labels = None
    if labels_column is not None:
        if header is None:
            index = int(labels_column)
        elif labels_column in header:
            index = header.index(labels_column)
        else:
            raise KeyError("no column %r in header %s" % (labels_column, header))
        labels = data[:, index].astype(int)
        data = np.delete(data, index, axis=1)
    return data, labels


def write_scores_csv(path, scores):
    with open(path, "w") as handle:
        handle.write("score\n")
        for value in scores:
            handle.write("%.10g\n" % value)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robust & explainable time series outlier detection "
                    "(Kieu et al., ICDE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-methods", help="print the registered method names")

    detect = sub.add_parser("detect", help="score a CSV time series")
    detect.add_argument("--method", default="RDAE",
                        help="method name (see list-methods)")
    detect.add_argument("--input", required=True, help="input CSV path")
    detect.add_argument("--output", help="output CSV path (default: stdout)")
    detect.add_argument("--labels-column",
                        help="name (or index for headerless CSVs) of a 0/1 "
                             "ground-truth column; enables AUC reporting")
    detect.add_argument("--top", type=int, default=5,
                        help="print the top-K scored positions")

    demo = sub.add_parser("demo", help="run a method on a built-in surrogate")
    demo.add_argument("--method", default="RAE")
    demo.add_argument("--dataset", default="S5")
    demo.add_argument("--scale", type=float, default=0.15)
    return parser


def _run_detect(args):
    values, labels = read_series_csv(args.input, args.labels_column)
    detector = make_detector(args.method)
    scores = detector.fit_score(values)
    if args.output:
        write_scores_csv(args.output, scores)
        print("wrote %d scores to %s" % (len(scores), args.output))
    else:
        for value in scores:
            print("%.10g" % value)
    top = np.argsort(-scores)[: args.top]
    print("top-%d positions: %s" % (args.top, sorted(top.tolist())),
          file=sys.stderr)
    if labels is not None and 0 < labels.sum() < labels.size:
        print("PR-AUC  = %.4f" % pr_auc(labels, scores), file=sys.stderr)
        print("ROC-AUC = %.4f" % roc_auc(labels, scores), file=sys.stderr)
    return 0


def _run_demo(args):
    dataset = load_dataset(args.dataset, scale=args.scale)
    print(dataset.summary())
    ts = dataset[0]
    detector = make_detector(args.method)
    scores = detector.fit_score(ts)
    print("%s on %s: PR-AUC = %.4f, ROC-AUC = %.4f" % (
        args.method, ts.name, pr_auc(ts.labels, scores),
        roc_auc(ts.labels, scores),
    ))
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.command == "list-methods":
        for name in available_methods():
            print(name)
        return 0
    if args.command == "detect":
        return _run_detect(args)
    if args.command == "demo":
        return _run_demo(args)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
