"""Command-line interface: run any method on a CSV time series.

Usage::

    python -m repro list-methods
    python -m repro detect --method RDAE --input series.csv --output scores.csv
    python -m repro detect --method RAE --input series.csv --labels-column label
    python -m repro demo --method RAE
    python -m repro stream --method RAE --input - --train 200 --window 128
    python -m repro serve --model rae.npz --input - --drain-every 32

``detect`` reads a CSV whose columns are the series dimensions (an optional
header row is auto-detected), computes per-observation outlier scores, and
writes/prints them.  When a labels column is named, PR/ROC AUC are reported.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .datasets import load_dataset
from .eval import available_methods, make_detector
from .metrics import pr_auc, roc_auc

__all__ = ["main", "build_parser", "read_series_csv", "write_scores_csv"]


def read_series_csv(path, labels_column=None):
    """Load a CSV into ``(values, labels_or_None)``.

    The first row is treated as a header when any of its cells is not
    numeric.  All non-label columns become series dimensions.  ``path`` may
    be ``"-"`` to read from stdin (the streaming idiom).
    """
    if str(path) == "-":
        lines = [line.strip() for line in sys.stdin if line.strip()]
    else:
        with open(path) as handle:
            lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ValueError("empty CSV: %s" % path)
    first = lines[0].split(",")

    def numeric(cell):
        try:
            float(cell)
            return True
        except ValueError:
            return False

    has_header = not all(numeric(cell) for cell in first)
    header = [cell.strip() for cell in first] if has_header else None
    rows = lines[1:] if has_header else lines
    data = np.array([[float(c) for c in row.split(",")] for row in rows])

    labels = None
    if labels_column is not None:
        if header is None:
            index = int(labels_column)
        elif labels_column in header:
            index = header.index(labels_column)
        else:
            raise KeyError("no column %r in header %s" % (labels_column, header))
        labels = data[:, index].astype(int)
        data = np.delete(data, index, axis=1)
    return data, labels


def write_scores_csv(path, scores):
    with open(path, "w") as handle:
        handle.write("score\n")
        for value in scores:
            handle.write("%.10g\n" % value)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robust & explainable time series outlier detection "
                    "(Kieu et al., ICDE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-methods", help="print the registered method names")

    detect = sub.add_parser("detect", help="score a CSV time series")
    detect.add_argument("--method", default="RDAE",
                        help="method name (see list-methods)")
    detect.add_argument("--input", required=True, help="input CSV path")
    detect.add_argument("--output", help="output CSV path (default: stdout)")
    detect.add_argument("--labels-column",
                        help="name (or index for headerless CSVs) of a 0/1 "
                             "ground-truth column; enables AUC reporting")
    detect.add_argument("--top", type=int, default=5,
                        help="print the top-K scored positions")

    demo = sub.add_parser("demo", help="run a method on a built-in surrogate")
    demo.add_argument("--method", default="RAE")
    demo.add_argument("--dataset", default="S5")
    demo.add_argument("--scale", type=float, default=0.15)

    stream = sub.add_parser(
        "stream",
        help="train on the head of a series, then score the rest point by "
             "point over a sliding window",
    )
    stream.add_argument("--method", default="RAE",
                        help="method name (see list-methods)")
    stream.add_argument("--input", required=True,
                        help="input CSV path, or '-' for stdin")
    stream.add_argument("--train", type=int, default=None,
                        help="observations read from the head of the input "
                             "to fit the detector (default: 200)")
    stream.add_argument("--window", type=int, default=128,
                        help="sliding-window capacity for streamed scoring")
    stream.add_argument("--model",
                        help="load a fitted RAE/RDAE from this .npz instead "
                             "of training on the head (see repro.core"
                             ".save_detector); --train is then ignored")
    stream.add_argument("--chunk", type=int, default=1,
                        help="arrivals scored per engine call (micro-batching)")
    stream.add_argument("--output", help="output CSV path (default: stdout)")

    serve = sub.add_parser(
        "serve",
        help="serve many interleaved streams: read 'stream_id,value...' "
             "lines, score bursts as micro-batched drains",
    )
    serve.add_argument("--input", default="-",
                       help="input path, or '-' (default) for stdin; each "
                            "line is 'stream_id,v1[,v2...]'")
    serve.add_argument("--model",
                       help="fitted RAE/RDAE .npz shared by every stream "
                            "shard (see repro.core.save_detector)")
    serve.add_argument("--method", default="RAE",
                       help="method to fit when --model is not given")
    serve.add_argument("--train-input",
                       help="CSV series to fit the shared detector on when "
                            "--model is not given")
    serve.add_argument("--window", type=int, default=128,
                       help="sliding-window capacity per stream shard")
    serve.add_argument("--queue-limit", type=int, default=4096,
                       help="bound on queued-but-unscored arrivals")
    serve.add_argument("--on-full", choices=("error", "drop-oldest"),
                       default="error",
                       help="backpressure policy when the queue is full")
    serve.add_argument("--drain-every", type=int, default=32,
                       help="arrivals buffered between scoring drains")
    serve.add_argument("--output", help="output CSV path (default: stdout)")
    return parser


def _run_detect(args):
    values, labels = read_series_csv(args.input, args.labels_column)
    detector = make_detector(args.method)
    scores = detector.fit_score(values)
    if args.output:
        write_scores_csv(args.output, scores)
        print("wrote %d scores to %s" % (len(scores), args.output))
    else:
        for value in scores:
            print("%.10g" % value)
    top = np.argsort(-scores)[: args.top]
    print("top-%d positions: %s" % (args.top, sorted(top.tolist())),
          file=sys.stderr)
    if labels is not None and 0 < labels.sum() < labels.size:
        print("PR-AUC  = %.4f" % pr_auc(labels, scores), file=sys.stderr)
        print("ROC-AUC = %.4f" % roc_auc(labels, scores), file=sys.stderr)
    return 0


def _iter_csv_rows(handle):
    """Yield float rows from a CSV stream lazily, skipping a header row."""
    first = True
    for line in handle:
        line = line.strip()
        if not line:
            continue
        cells = line.split(",")
        if first:
            first = False
            try:
                [float(c) for c in cells]
            except ValueError:
                continue  # header row
        yield np.array([float(c) for c in cells])


def _run_stream(args):
    """Live streaming loop: scores are emitted (and flushed) as arrivals are
    scored, so an open-ended pipe on stdin produces output continuously and
    memory stays bounded by the window — never by the stream length."""
    from .core import load_detector
    from .stream import StreamScorer

    source = sys.stdin if str(args.input) == "-" else open(args.input)
    try:
        rows = _iter_csv_rows(source)
        if args.model:
            detector = load_detector(args.model)
            head_rows = []
        else:
            head = args.train if args.train is not None else 200
            head_rows = [row for __, row in zip(range(max(head, 2)), rows)]
            if len(head_rows) < 2:
                raise ValueError(
                    "need at least 2 observations to train on; got %d "
                    "(is the input empty?)" % len(head_rows)
                )
            detector = make_detector(args.method)
            detector.fit(np.stack(head_rows))
        scorer = StreamScorer(detector, window=args.window)
        # Seed the window with the training tail so the first streamed
        # points have context (no scoring pass runs for the seed).
        if head_rows:
            scorer.seed(np.stack(head_rows[-args.window :]))

        out = open(args.output, "w") if args.output else sys.stdout
        streamed = 0
        try:
            if args.output:
                out.write("index,score\n")
            # A chunk larger than the window would evict (and zero-score)
            # its own oldest points; clamp so every line is a real score.
            chunk = int(np.clip(args.chunk, 1, args.window))
            pending = []
            index = len(head_rows)

            def emit(batch):
                nonlocal streamed, index
                for score in scorer.push_many(np.stack(batch)):
                    out.write("%d,%.10g\n" % (index, score))
                    index += 1
                    streamed += 1
                out.flush()

            for row in rows:
                pending.append(row)
                if len(pending) >= chunk:
                    emit(pending)
                    pending = []
            if pending:
                emit(pending)
        finally:
            if args.output:
                out.close()
        if args.output:
            print("wrote %d streamed scores to %s" % (streamed, args.output))
        print("streamed %d points (window=%d, method=%s)"
              % (streamed, args.window, detector.name), file=sys.stderr)
    finally:
        if source is not sys.stdin:
            source.close()
    return 0


def _run_serve(args):
    """Multi-stream serving loop over a ``stream_id,value...`` line protocol.

    Lines are enqueued as they arrive; every ``--drain-every`` arrivals the
    router drains the burst as one micro-batched scoring pass and emits
    ``stream_id,index,score`` lines (flushed per drain).  Stream shards are
    created on first sight of a new id, all sharing one fitted detector —
    which is what lets a drain group their forward passes.
    """
    from .core import load_detector
    from .serve import StreamRouter

    if args.model:
        detector = load_detector(args.model)
    elif args.train_input:
        values, __ = read_series_csv(args.train_input)
        detector = make_detector(args.method)
        detector.fit(values)
    else:
        raise SystemExit("serve needs --model or --train-input "
                         "(a shared detector to serve every stream with)")
    router = StreamRouter(
        detector,
        window=args.window,
        queue_limit=args.queue_limit,
        on_full=args.on_full.replace("-", "_"),
    )
    emitted = {}

    source = sys.stdin if str(args.input) == "-" else open(args.input)
    out = open(args.output, "w") if args.output else sys.stdout
    try:
        if args.output:
            out.write("stream,index,score\n")

        def emit(results):
            for stream_id, scores in results.items():
                index = emitted.setdefault(stream_id, 0)
                for score in scores:
                    out.write("%s,%d,%.10g\n" % (stream_id, index, score))
                    index += 1
                emitted[stream_id] = index
            out.flush()

        # Drain before the queue can fill: with the 'error' policy a
        # drain-every above the queue limit would raise QueueFullError
        # before the first drain was ever reached.
        drain_every = int(np.clip(args.drain_every, 1, args.queue_limit))
        buffered = 0
        for line in source:
            line = line.strip()
            if not line:
                continue
            cells = line.split(",")
            try:
                row = [float(c) for c in cells[1:]]
            except (ValueError, IndexError):
                continue  # header or malformed line
            if not row:
                continue
            router.submit(cells[0].strip(), row)
            buffered += 1
            if buffered >= drain_every:
                emit(router.drain())
                buffered = 0
        emit(router.drain())
    finally:
        if args.output:
            out.close()
        if source is not sys.stdin:
            source.close()
    stats = router.stats()
    print("served %d streams: %d scored, %d dropped, %d drains "
          "(window=%d, method=%s)"
          % (stats["streams"], stats["scored"], stats["dropped"],
             stats["drains"], args.window, detector.name), file=sys.stderr)
    return 0


def _run_demo(args):
    dataset = load_dataset(args.dataset, scale=args.scale)
    print(dataset.summary())
    ts = dataset[0]
    detector = make_detector(args.method)
    scores = detector.fit_score(ts)
    print("%s on %s: PR-AUC = %.4f, ROC-AUC = %.4f" % (
        args.method, ts.name, pr_auc(ts.labels, scores),
        roc_auc(ts.labels, scores),
    ))
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.command == "list-methods":
        for name in available_methods():
            print(name)
        return 0
    if args.command == "detect":
        return _run_detect(args)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "stream":
        return _run_stream(args)
    if args.command == "serve":
        return _run_serve(args)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
