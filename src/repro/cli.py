"""Command-line interface: run any method on a CSV time series.

Usage::

    python -m repro list-methods
    python -m repro detect --method RDAE --input series.csv --output scores.csv
    python -m repro detect --method RAE --input series.csv --threshold pot
    python -m repro pipeline --spec pipeline.json --input series.csv --save model
    python -m repro demo --method RAE
    python -m repro stream --method RAE --input - --train 200 --window 128
    python -m repro serve --model rae.npz --input - --state-dir state/ --workers 4
    python -m repro serve --model rae.npz --tcp 9000 --http 9001 --drain-backend process

``detect`` reads a CSV whose columns are the series dimensions (an optional
header row is auto-detected), computes per-observation outlier scores, and
writes/prints them.  When a labels column is named, PR/ROC AUC are reported;
with ``--threshold`` a binary label column is emitted too.

Every subcommand that builds a detector accepts ``--spec pipeline.json``
instead of ``--method``: the JSON is a :class:`repro.api.PipelineSpec` (or
bare :class:`repro.api.DetectorSpec`), the same document the Python API,
persistence sidecars, and router recovery all share — one construction
surface instead of per-subcommand argparse plumbing.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from .datasets import load_dataset
from .eval import available_methods
from .metrics import pr_auc, roc_auc

__all__ = ["main", "build_parser", "read_series_csv", "write_scores_csv"]


def read_series_csv(path, labels_column=None):
    """Load a CSV into ``(values, labels_or_None)``.

    The first row is treated as a header when any of its cells is not
    numeric.  All non-label columns become series dimensions.  ``path`` may
    be ``"-"`` to read from stdin (the streaming idiom).
    """
    if str(path) == "-":
        lines = [line.strip() for line in sys.stdin if line.strip()]
    else:
        with open(path) as handle:
            lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ValueError("empty CSV: %s" % path)
    first = lines[0].split(",")

    def numeric(cell):
        try:
            float(cell)
            return True
        except ValueError:
            return False

    has_header = not all(numeric(cell) for cell in first)
    header = [cell.strip() for cell in first] if has_header else None
    rows = lines[1:] if has_header else lines
    data = np.array([[float(c) for c in row.split(",")] for row in rows])

    labels = None
    if labels_column is not None:
        if header is None:
            index = int(labels_column)
        elif labels_column in header:
            index = header.index(labels_column)
        else:
            raise KeyError("no column %r in header %s" % (labels_column, header))
        labels = data[:, index].astype(int)
        data = np.delete(data, index, axis=1)
    return data, labels


def write_scores_csv(path, scores, labels=None):
    with open(path, "w") as handle:
        if labels is None:
            handle.write("score\n")
            for value in scores:
                handle.write("%.10g\n" % value)
        else:
            handle.write("score,label\n")
            for value, label in zip(scores, labels):
                handle.write("%.10g,%d\n" % (value, label))


def _threshold_stage(args):
    """The spec threshold stage requested by --threshold/--threshold-param."""
    kind = getattr(args, "threshold", None)
    if not kind:
        if getattr(args, "threshold_param", None) is not None:
            raise SystemExit("--threshold-param needs --threshold "
                             "{quantile,mad,pot} to bind to")
        return None
    stage = {"kind": kind}
    param = getattr(args, "threshold_param", None)
    if param is not None:
        from .api import THRESHOLD_KINDS

        # Each kind's primary knob is the first entry of its spec schema.
        stage[THRESHOLD_KINDS[kind][0]] = param
    return stage


def _pipeline_from_args(args):
    """One construction path for every subcommand: spec file or --method.

    ``--spec`` wins when given; otherwise a minimal spec is assembled from
    ``--method``.  A ``--threshold`` flag overrides the spec's threshold
    stage either way.
    """
    from .api import DetectorSpec, Pipeline, PipelineSpec, read_spec

    if getattr(args, "spec", None):
        spec = read_spec(args.spec)
    else:
        spec = PipelineSpec(DetectorSpec(args.method))
    stage = _threshold_stage(args)
    if stage is not None:
        spec.threshold = stage
    return Pipeline(spec)


def _detector_from_args(args):
    """The bare detector for subcommands that stream/fit it themselves."""
    pipeline = _pipeline_from_args(args)
    if pipeline.spec.preprocess:
        print("note: the spec's preprocess stages are ignored by this "
              "subcommand (raw arrivals are scored); they apply in "
              "`detect` and `pipeline`", file=sys.stderr)
    return pipeline.detector


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robust & explainable time series outlier detection "
                    "(Kieu et al., ICDE 2022 reproduction)",
    )
    parser.add_argument("--eager", action="store_true",
                        help="disable the tape-compiled training fast path "
                             "(repro.nn.tape) and train every fit eagerly; "
                             "results are bit-identical either way")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-methods", help="print the registered method names")

    def add_spec(p):
        p.add_argument("--spec",
                       help="pipeline/detector spec JSON (repro.api); "
                            "overrides --method")

    detect = sub.add_parser("detect", help="score a CSV time series")
    detect.add_argument("--method", default="RDAE",
                        help="method name (see list-methods)")
    add_spec(detect)
    detect.add_argument("--input", required=True, help="input CSV path")
    detect.add_argument("--output", help="output CSV path (default: stdout)")
    detect.add_argument("--labels-column",
                        help="name (or index for headerless CSVs) of a 0/1 "
                             "ground-truth column; enables AUC reporting")
    detect.add_argument("--top", type=int, default=5,
                        help="print the top-K scored positions")
    detect.add_argument("--threshold", choices=("quantile", "mad", "pot"),
                        help="emit binary labels via this "
                             "repro.metrics.thresholds estimator")
    detect.add_argument("--threshold-param", type=float,
                        help="the estimator's knob: quantile q (default "
                             "0.99), MAD k (default 5.0), or POT risk "
                             "(default 1e-3)")

    pipeline = sub.add_parser(
        "pipeline",
        help="run a spec-driven pipeline: score + threshold a CSV, "
             "optionally persisting (or reloading) the fitted pipeline",
    )
    pipeline.add_argument("--spec",
                          help="pipeline spec JSON (required unless --load)")
    pipeline.add_argument("--load",
                          help="reload a pipeline saved by --save (spec "
                               "sidecar + weights) and score with it "
                               "instead of fitting from --spec")
    pipeline.add_argument("--input", required=True, help="input CSV path")
    pipeline.add_argument("--output",
                          help="output CSV path (default: stdout)")
    pipeline.add_argument("--labels-column",
                          help="0/1 ground-truth column; enables AUC "
                               "reporting")
    pipeline.add_argument("--save",
                          help="persist the fitted pipeline to this stem "
                               "(<stem>.json spec sidecar + <stem>.npz "
                               "weights; see repro.core.save_pipeline)")
    pipeline.add_argument("--explain", action="store_true",
                          help="print per-channel attribution of the "
                               "flagged positions (explainable detectors)")

    demo = sub.add_parser("demo", help="run a method on a built-in surrogate")
    demo.add_argument("--method", default="RAE")
    add_spec(demo)
    demo.add_argument("--dataset", default="S5")
    demo.add_argument("--scale", type=float, default=0.15)

    stream = sub.add_parser(
        "stream",
        help="train on the head of a series, then score the rest point by "
             "point over a sliding window",
    )
    stream.add_argument("--method", default="RAE",
                        help="method name (see list-methods)")
    add_spec(stream)
    stream.add_argument("--input", required=True,
                        help="input CSV path, or '-' for stdin")
    stream.add_argument("--train", type=int, default=None,
                        help="observations read from the head of the input "
                             "to fit the detector (default: 200)")
    stream.add_argument("--window", type=int, default=128,
                        help="sliding-window capacity for streamed scoring")
    stream.add_argument("--model",
                        help="load a fitted RAE/RDAE from this .npz instead "
                             "of training on the head (see repro.core"
                             ".save_detector); --train is then ignored")
    stream.add_argument("--chunk", type=int, default=1,
                        help="arrivals scored per engine call (micro-batching)")
    stream.add_argument("--output", help="output CSV path (default: stdout)")

    serve = sub.add_parser(
        "serve",
        help="serve many interleaved streams: read 'stream_id,value...' "
             "lines, score bursts as micro-batched drains",
    )
    serve.add_argument("--input", default="-",
                       help="input path, or '-' (default) for stdin; each "
                            "line is 'stream_id,v1[,v2...]'")
    serve.add_argument("--model",
                       help="fitted RAE/RDAE .npz shared by every stream "
                            "shard (see repro.core.save_detector)")
    serve.add_argument("--method", default="RAE",
                       help="method to fit when --model is not given")
    add_spec(serve)
    serve.add_argument("--train-input",
                       help="CSV series to fit the shared detector on when "
                            "--model is not given")
    serve.add_argument("--state-dir",
                       help="shard-recovery directory: restored from on "
                            "startup when it holds a saved router, and "
                            "saved to on shutdown (see StreamRouter.save/"
                            "restore)")
    serve.add_argument("--window", type=int, default=128,
                       help="sliding-window capacity per stream shard")
    serve.add_argument("--queue-limit", type=int, default=4096,
                       help="bound on queued-but-unscored arrivals")
    serve.add_argument("--on-full", choices=("error", "drop-oldest"),
                       default="error",
                       help="backpressure policy when the queue is full")
    serve.add_argument("--drain-every", type=int, default=32,
                       help="arrivals buffered between scoring drains")
    serve.add_argument("--workers", type=int, default=None,
                       help="drain worker count; with --drain-backend auto, "
                            ">1 selects the 'threaded' backend (same-"
                            "detector shard groups scored concurrently — "
                            "applies to restored routers too, it only "
                            "changes where forwards run, never their "
                            "results)")
    serve.add_argument("--drain-backend", default="auto",
                       choices=("auto", "serial", "threaded", "process"),
                       help="where drains score their shard groups: on the "
                            "calling thread (serial), a thread pool "
                            "(threaded), or a pool of worker processes "
                            "sharing mmap'd weights (process); 'auto' "
                            "(default) picks threaded when --workers > 1. "
                            "All backends score bit-identically")
    serve.add_argument("--tcp", type=int, metavar="PORT",
                       help="serve the 'stream_id,value...' line protocol "
                            "on this TCP port (0 picks an ephemeral port); "
                            "replaces the --input loop — the process runs "
                            "until SIGTERM, which drains and shuts down")
    serve.add_argument("--http", type=int, metavar="PORT",
                       help="serve the JSON batch API on this HTTP port "
                            "(POST /submit, GET /stats; 0 picks an "
                            "ephemeral port); combinable with --tcp")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --tcp/--http "
                            "(default: 127.0.0.1)")
    serve.add_argument("--output", help="output CSV path (default: stdout)")
    serve.add_argument("--eager", action="store_true", dest="serve_eager",
                       help="disable the compiled inference path (grad-free "
                            "score tapes + stacked cross-detector programs) "
                            "and run every drain forward eagerly; scores "
                            "are bit-identical either way. REPRO_EAGER=1 "
                            "does the same")

    lint = sub.add_parser(
        "lint",
        help="statically check the codebase's determinism, tape-safety, "
             "lock-discipline and resource contracts (repro.analysis)",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the full report as JSON")
    lint.add_argument("--rules",
                      help="comma-separated rule ids to run (default: all), "
                           "or 'list' to print the rule catalog")
    lint.add_argument("--list-suppressions", action="store_true",
                      help="enumerate every '# repro: lint-ok[...]' pragma "
                           "instead of linting; exits non-zero when any "
                           "pragma lacks a reason or names an unknown rule")
    return parser


def _emit_scores(args, scores, flags=None):
    """Write scores (and optional binary labels) per the --output choice."""
    if args.output:
        write_scores_csv(args.output, scores, flags)
        print("wrote %d scores to %s" % (len(scores), args.output))
    elif flags is None:
        for value in scores:
            print("%.10g" % value)
    else:
        for value, flag in zip(scores, flags):
            print("%.10g,%d" % (value, flag))


def _report_aucs(labels, scores):
    if labels is not None and 0 < labels.sum() < labels.size:
        print("PR-AUC  = %.4f" % pr_auc(labels, scores), file=sys.stderr)
        print("ROC-AUC = %.4f" % roc_auc(labels, scores), file=sys.stderr)


def _run_detect(args):
    values, labels = read_series_csv(args.input, args.labels_column)
    pipeline = _pipeline_from_args(args)
    # --threshold was merged into the spec by _pipeline_from_args, so this
    # also honours a threshold stage declared in the --spec file itself.
    if pipeline.spec.threshold is not None:
        result = pipeline.detect(values)
        scores, flags = result["scores"], result["labels"]
        print("threshold(%s) = %.10g, flagged %d/%d"
              % (pipeline.spec.threshold["kind"], result["threshold"],
                 flags.sum(), flags.size), file=sys.stderr)
    else:
        scores, flags = pipeline.fit_score(values), None
    _emit_scores(args, scores, flags)
    top = np.argsort(-scores)[: args.top]
    print("top-%d positions: %s" % (args.top, sorted(top.tolist())),
          file=sys.stderr)
    _report_aucs(labels, scores)
    return 0


def _run_pipeline(args):
    """Spec JSON -> fitted pipeline -> scores/labels (-> saved pipeline)."""
    from .core import load_pipeline

    if (args.spec is None) == (args.load is None):
        raise SystemExit("pipeline needs exactly one of --spec or --load")
    values, labels = read_series_csv(args.input, args.labels_column)
    if args.load:
        pipeline = load_pipeline(args.load)
        if args.explain and pipeline.is_fitted():
            # explain() attributes the fit-time decomposition; a loaded
            # pipeline scores this input warm, so the positions would index
            # a different series.
            raise SystemExit(
                "--explain needs a pipeline fitted on THIS input: it "
                "attributes the fit-time decomposition, which a --load'ed "
                "pipeline computed on its training series — use --spec to "
                "fit-and-explain here"
            )
        print("loaded %s pipeline (capabilities: %s%s)"
              % (pipeline.spec.detector.method,
                 ", ".join(sorted(pipeline.capabilities())),
                 ", fitted" if pipeline.is_fitted() else ""),
              file=sys.stderr)
    else:
        pipeline = _pipeline_from_args(args)
    if args.explain and "explainable" not in pipeline.capabilities():
        # Knowable before any work runs: fail here, not after the fit.
        raise SystemExit(
            "--explain needs an explainable detector (one exposing the "
            "decomposed outlier series), but %s declares only {%s}"
            % (pipeline.spec.detector.method,
               ", ".join(sorted(pipeline.capabilities())))
        )
    result = pipeline.detect(values)
    flags = result["labels"]
    print("threshold = %.10g, flagged %d/%d"
          % (result["threshold"], flags.sum(), flags.size), file=sys.stderr)
    _emit_scores(args, result["scores"], flags)
    _report_aucs(labels, result["scores"])
    if args.explain:
        report = pipeline.explain(np.flatnonzero(flags))
        for pos, channel in zip(np.flatnonzero(flags),
                                report["dominant_channels"]):
            print("position %d: dominant channel %d" % (pos, channel),
                  file=sys.stderr)
    if args.save:
        sidecar = pipeline.save(args.save)
        print("saved pipeline to %s" % sidecar, file=sys.stderr)
    return 0


def _iter_csv_rows(handle):
    """Yield float rows from a CSV stream lazily, skipping a header row."""
    first = True
    for line in handle:
        line = line.strip()
        if not line:
            continue
        cells = line.split(",")
        if first:
            first = False
            try:
                [float(c) for c in cells]
            except ValueError:
                continue  # header row
        yield np.array([float(c) for c in cells])


def _run_stream(args):
    """Live streaming loop: scores are emitted (and flushed) as arrivals are
    scored, so an open-ended pipe on stdin produces output continuously and
    memory stays bounded by the window — never by the stream length."""
    from .core import load_detector
    from .stream import StreamScorer

    source = sys.stdin if str(args.input) == "-" else open(args.input)
    try:
        rows = _iter_csv_rows(source)
        if args.model:
            detector = load_detector(args.model)
            head_rows = []
        else:
            head = args.train if args.train is not None else 200
            head_rows = [row for __, row in zip(range(max(head, 2)), rows)]
            if len(head_rows) < 2:
                raise ValueError(
                    "need at least 2 observations to train on; got %d "
                    "(is the input empty?)" % len(head_rows)
                )
            detector = _detector_from_args(args)
            detector.fit(np.stack(head_rows))
        scorer = StreamScorer(detector, window=args.window)
        # Seed the window with the training tail so the first streamed
        # points have context (no scoring pass runs for the seed).
        if head_rows:
            scorer.seed(np.stack(head_rows[-args.window :]))

        out = open(args.output, "w") if args.output else sys.stdout
        streamed = 0
        try:
            if args.output:
                out.write("index,score\n")
            # A chunk larger than the window would evict (and zero-score)
            # its own oldest points; clamp so every line is a real score.
            chunk = int(np.clip(args.chunk, 1, args.window))
            pending = []
            index = len(head_rows)

            def emit(batch):
                nonlocal streamed, index
                for score in scorer.push_many(np.stack(batch)):
                    out.write("%d,%.10g\n" % (index, score))
                    index += 1
                    streamed += 1
                out.flush()

            for row in rows:
                pending.append(row)
                if len(pending) >= chunk:
                    emit(pending)
                    pending = []
            if pending:
                emit(pending)
        finally:
            if args.output:
                out.close()
        if args.output:
            print("wrote %d streamed scores to %s" % (streamed, args.output))
        print("streamed %d points (window=%d, method=%s)"
              % (streamed, args.window, detector.name), file=sys.stderr)
    finally:
        if source is not sys.stdin:
            source.close()
    return 0


def _run_serve(args):
    """Multi-stream serving loop over a ``stream_id,value...`` line protocol.

    Lines are enqueued as they arrive; every ``--drain-every`` arrivals the
    router drains the burst as one micro-batched scoring pass and emits
    ``stream_id,index,score`` lines (flushed per drain).  Stream shards are
    created on first sight of a new id, all sharing one fitted detector —
    which is what lets a drain group their forward passes.
    """
    import os

    from .core import load_detector
    from .serve import DrainError, StreamRouter

    import json as _json

    manifest_path = (os.path.join(args.state_dir, "router.json")
                     if args.state_dir else None)
    restorable = manifest_path is not None and os.path.exists(manifest_path)
    # --model / --train-input double as the restore-time default-detector
    # override: shards whose fitted state could not be persisted (score-
    # mode non-RAE/RDAE detectors save spec-only) are only restartable
    # with a fitted instance supplied here.  Skip the (possibly expensive)
    # load/retrain when the manifest shows restore would discard it anyway
    # because the saved default has its own weights.
    need_override = True
    if restorable:
        with open(manifest_path) as handle:
            manifest = _json.load(handle)
        default = manifest.get("default_detector")
        need_override = (
            default is not None
            and manifest["detectors"][default]["weights"] is None
        )
    override = None
    if need_override:
        if args.model:
            override = load_detector(args.model)
        elif args.train_input:
            values, __ = read_series_csv(args.train_input)
            override = _detector_from_args(args)
            override.fit(values)
    elif restorable and (args.model or args.train_input):
        print("note: --model/--train-input ignored — the saved router's "
              "default detector restores from its own weights (saved "
              "weights always win; start a fresh --state-dir to serve a "
              "new model)", file=sys.stderr)
    workers = args.workers if args.workers is None else max(int(args.workers), 1)
    if args.drain_backend == "auto":
        # Auto keeps the historical contract: --workers > 1 means threaded,
        # anything else serial — and, on a restored router, "no execution
        # flags" keeps the backend the router was SAVED with.
        backend = (None if workers is None
                   else ("threaded" if workers > 1 else "serial"))
    else:
        backend = args.drain_backend
    if restorable:
        # --workers/--drain-backend are execution knobs (where forwards
        # run), so unlike the semantic flags they DO apply to a restored
        # router.
        router = StreamRouter.restore(
            args.state_dir, detector=override,
            drain_backend=backend,
            workers=workers,
        )
        detector = router.detector if router.detector is not None else override
        print("restored %d stream(s) from %s"
              % (len(router), args.state_dir), file=sys.stderr)
        print("serving with the RESTORED configuration (window=%d, "
              "queue_limit=%d, on_full=%s); this run's --window/"
              "--queue-limit/--on-full flags do not apply"
              % (router.window, router.queue_limit, router.on_full),
              file=sys.stderr)
    elif override is not None:
        detector = override
        router = StreamRouter(
            detector,
            window=args.window,
            queue_limit=args.queue_limit,
            on_full=args.on_full.replace("-", "_"),
            drain_backend=backend,
            workers=workers,
        )
    else:
        raise SystemExit("serve needs --model or --train-input (or a "
                         "--state-dir holding a saved router) — a shared "
                         "detector to serve every stream with")
    if args.tcp is not None or args.http is not None:
        return _serve_network(args, router, detector)
    # Output indices continue where the previous process stopped.
    emitted = {stream_id: router.stream_stats(stream_id)["scored"]
               for stream_id in router.streams()}

    source = sys.stdin if str(args.input) == "-" else open(args.input)
    out = open(args.output, "w") if args.output else sys.stdout
    try:
        if args.output:
            out.write("stream,index,score\n")

        def emit(results):
            for stream_id, scores in results.items():
                index = emitted.setdefault(stream_id, 0)
                for score in scores:
                    out.write("%s,%d,%.10g\n" % (stream_id, index, score))
                    index += 1
                emitted[stream_id] = index
            out.flush()

        # Drain before the queue can fill: with the 'error' policy a
        # drain-every above the queue limit would raise QueueFullError
        # before the first drain was ever reached.  Clamp against the
        # router's OWN limit — a restored router keeps its saved
        # queue_limit, not this invocation's --queue-limit.
        drain_every = int(np.clip(args.drain_every, 1, router.queue_limit))
        buffered = 0

        def drain_and_emit():
            # A partially failed drain already scored (and counted) its
            # healthy streams; they must be written before the error
            # propagates, or a --state-dir resume would skip their
            # indices in the output forever.
            try:
                emit(router.drain())
            except DrainError as exc:
                emit(exc.results)
                raise

        try:
            for line in source:
                line = line.strip()
                if not line:
                    continue
                cells = line.split(",")
                try:
                    row = [float(c) for c in cells[1:]]
                except (ValueError, IndexError):
                    continue  # header or malformed line
                if not row:
                    continue
                router.submit(cells[0].strip(), row)
                buffered += 1
                if buffered >= drain_every:
                    drain_and_emit()
                    buffered = 0
        except KeyboardInterrupt:
            # An operator's Ctrl-C must still score the buffered tail,
            # surface the stats, and persist the state.
            print("interrupted; draining %d buffered arrival(s)" % buffered,
                  file=sys.stderr)
        drain_and_emit()
    finally:
        if args.output:
            out.close()
        if source is not sys.stdin:
            source.close()
        # Persist in ALL shutdown paths — EOF, Ctrl-C, or a crashing
        # arrival/drain: whatever aborts the loop must never cost the
        # session's accumulated shard state (the error still propagates).
        if args.state_dir:
            # Checked before save() runs: inside an except handler
            # exc_info would report the save's own exception.
            unwinding = sys.exc_info()[0] is not None
            try:
                router.save(args.state_dir)
                print("saved router state to %s (restart with the same "
                      "--state-dir to resume)" % args.state_dir,
                      file=sys.stderr)
            except Exception as exc:
                if not unwinding:
                    raise  # clean shutdown: a failed save IS the error
                # already unwinding: report, don't mask the root cause
                print("warning: could not save router state: %s" % exc,
                      file=sys.stderr)
        _print_router_stats(router, router.window, detector)
        router.close()  # stop the threaded backend's workers, if any
    return 0


def _serve_network(args, router, detector):
    """Serve the router over TCP/HTTP until SIGTERM (or SIGINT).

    Scores flow back to the submitting connections (see
    :mod:`repro.serve.frontend`), not to stdout; shutdown is graceful —
    the buffered tail is drained and delivered to still-connected
    clients, the router state is saved (with ``--state-dir``), and the
    usual per-stream stats are printed.
    """
    import signal
    import threading

    from .serve import FrontendEngine, HttpFrontend, TcpFrontend

    engine = FrontendEngine(
        router,
        drain_every=int(np.clip(args.drain_every, 1, router.queue_limit)),
    )
    frontends, previous = [], {}
    stop = threading.Event()
    try:
        if args.tcp is not None:
            tcp = TcpFrontend(engine, host=args.host, port=args.tcp).start()
            frontends.append(tcp)
            print("serving TCP line protocol on %s:%d" % tcp.address,
                  file=sys.stderr, flush=True)
        if args.http is not None:
            http = HttpFrontend(engine, host=args.host, port=args.http).start()
            frontends.append(http)
            print("serving HTTP batch API on %s:%d" % http.address,
                  file=sys.stderr, flush=True)
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda *__: stop.set()
            )
        print("ready (drain-every=%d, backend=%s); SIGTERM drains and "
              "shuts down" % (engine.drain_every, router.drain_backend),
              file=sys.stderr, flush=True)
        stop.wait()
        print("shutting down: draining buffered arrivals", file=sys.stderr)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        for frontend in frontends:
            # stop() drains and delivers the tail before disconnecting.
            try:
                frontend.stop()
            except Exception as exc:  # noqa: BLE001 - keep shutting down
                print("warning: frontend shutdown failed: %s" % exc,
                      file=sys.stderr)
        front_stats = engine.stats()["frontend"]
        if front_stats["error_total"]:
            print("rejected %d malformed/refused submission(s): %s"
                  % (front_stats["error_total"], front_stats["errors"]),
                  file=sys.stderr)
        if args.state_dir:
            unwinding = sys.exc_info()[0] is not None
            try:
                router.save(args.state_dir)
                print("saved router state to %s (restart with the same "
                      "--state-dir to resume)" % args.state_dir,
                      file=sys.stderr)
            except Exception as exc:
                if not unwinding:
                    raise
                print("warning: could not save router state: %s" % exc,
                      file=sys.stderr)
        _print_router_stats(router, router.window, detector)
        router.close()
    return 0


def _print_router_stats(router, window, detector):
    """The shutdown stats surface: router totals + per-stream counters."""
    stats = router.stats()
    # A restored router may have per-stream detectors and no default.
    method = detector.name if detector is not None else "per-stream"
    print("served %d streams: %d scored, %d dropped, %d drains "
          "(window=%d, method=%s)"
          % (stats["streams"], stats["scored"], stats["dropped"],
             stats["drains"], window, method), file=sys.stderr)
    cache = stats.get("program_cache")
    if cache is not None:
        print("program cache: %d hits, %d misses, %d invalidations"
              % (cache["hits"], cache["misses"], cache["invalidations"]),
              file=sys.stderr)
    for stream_id, per in stats["per_stream"].items():
        print("  %s: scored=%d dropped=%d lag=%d window_fill=%d mode=%s"
              % (stream_id, per["scored"], per["dropped"], per["lag"],
                 per["window_fill"], per["mode"]), file=sys.stderr)


def _run_demo(args):
    dataset = load_dataset(args.dataset, scale=args.scale)
    print(dataset.summary())
    ts = dataset[0]
    detector = _detector_from_args(args)
    scores = detector.fit_score(ts)
    print("%s on %s: PR-AUC = %.4f, ROC-AUC = %.4f" % (
        detector.name, ts.name, pr_auc(ts.labels, scores),
        roc_auc(ts.labels, scores),
    ))
    return 0


def _run_lint(args):
    from . import analysis

    if args.rules == "list":
        print(analysis.render_rule_list(analysis.all_rules()))
        return 0
    rules = None
    if args.rules:
        try:
            rules = analysis.rules_by_id(
                [part.strip() for part in args.rules.split(",")
                 if part.strip()]
            )
        except KeyError as exc:
            print("error: %s" % exc.args[0], file=sys.stderr)
            return 2
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    report = analysis.run_lint(paths, rules=rules)
    if args.list_suppressions:
        print(analysis.render_suppressions(report))
        # The audit findings are the gate: a pragma with no reason or an
        # unknown rule id must fail the listing, clean findings pass it.
        bad = [f for f in report.findings
               if f.rule in ("suppression-reason", "parse-error")]
        for finding in bad:
            print("%s:%d: [%s] %s" % (finding.path, finding.line,
                                      finding.rule, finding.message),
                  file=sys.stderr)
        return 1 if bad else 0
    if args.as_json:
        print(analysis.render_json(report))
    else:
        print(analysis.render_text(report))
    return 0 if report.ok else 1


def main(argv=None):
    args = build_parser().parse_args(argv)
    if getattr(args, "eager", False) or getattr(args, "serve_eager", False):
        from . import nn

        nn.tape.set_tape_enabled(False)
        # Spawned drain workers re-import and read the env, so the opt-out
        # must travel there too (fork inherits the toggle either way).
        os.environ["REPRO_EAGER"] = "1"
    if args.command == "list-methods":
        for name in available_methods():
            print(name)
        return 0
    if args.command == "detect":
        return _run_detect(args)
    if args.command == "pipeline":
        return _run_pipeline(args)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "stream":
        return _run_stream(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "lint":
        return _run_lint(args)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
