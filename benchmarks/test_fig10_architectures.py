"""Fig. 10: fully-connected vs CNN instantiations of RAE and RDAE (S5).

Paper shape: FC variants train several times faster per epoch with
competitive accuracy — the frameworks are generic architectures, and the
runtime/accuracy trade-off is a free design knob.
"""

import time

import numpy as np
import pytest

from repro.core import make_ablation

from conftest import FAST_OVERRIDES, score_detector

VARIANTS = ["RAE_FC", "RAE_CNN", "RDAE_FC", "RDAE_CNN"]


def run(s5):
    results = {}
    for name in VARIANTS:
        fast = FAST_OVERRIDES["RDAE"] if name.startswith("RDAE") else FAST_OVERRIDES["RAE"]
        prs, rocs, runtimes = [], [], []
        for ts in s5:
            det = make_ablation(name, **fast)
            started = time.perf_counter()
            pr, roc = score_detector(det, ts)
            elapsed = time.perf_counter() - started
            prs.append(pr)
            rocs.append(roc)
            runtimes.append(det.seconds_per_epoch
                            if det.epoch_seconds_ else elapsed)
        results[name] = (
            float(np.mean(prs)),
            float(np.mean(rocs)),
            float(np.mean(runtimes)),
        )
    return results


@pytest.mark.benchmark(group="fig10")
def test_architectures(benchmark, s5):
    results = benchmark.pedantic(run, args=(s5,), rounds=1, iterations=1)
    print()
    print("Fig. 10 — FC vs CNN (S5): variant  PR  ROC  s/epoch")
    for name, (pr, roc, sec) in results.items():
        print("  %-9s %.3f  %.3f  %.4f" % (name, pr, roc, sec))
    # Paper shape: FC is faster than CNN for the same framework.
    assert results["RAE_FC"][2] <= results["RAE_CNN"][2] * 1.5
    assert results["RDAE_FC"][2] <= results["RDAE_CNN"][2] * 1.5
    # ... while staying usable.
    assert results["RAE_FC"][1] > 0.5
    assert results["RDAE_FC"][1] > 0.5
