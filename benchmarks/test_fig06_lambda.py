"""Fig. 6: effect of the sparsity weight lambda on PR/ROC (S5).

Paper shape: inverted-U for RSSA, RAE and RDAE with the peak between 1e-2
and 1e-1 — too-small lambda floods T_S with clean data (false positives),
too-large lambda keeps outliers in T_L (false negatives).
"""

import numpy as np
import pytest

from repro.eval import render_sweep

from conftest import mean_scores

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

LAMBDAS = [1e-4, 1e-3, 1e-2, 1e-1, 1.0]


def sweep(s5):
    pr = {"RSSA": {}, "RAE": {}, "RDAE": {}}
    roc = {"RSSA": {}, "RAE": {}, "RDAE": {}}
    for lam in LAMBDAS:
        pr["RSSA"][lam], roc["RSSA"][lam] = mean_scores("RSSA", s5, lam=lam)
        pr["RAE"][lam], roc["RAE"][lam] = mean_scores("RAE", s5, lam=lam)
        # The paper sets lam1 = lam2 = lam for RDAE.
        pr["RDAE"][lam], roc["RDAE"][lam] = mean_scores(
            "RDAE", s5, lam1=lam, lam2=lam
        )
    return pr, roc


@pytest.mark.benchmark(group="fig06")
def test_lambda_sweep(benchmark, s5):
    pr, roc = benchmark.pedantic(sweep, args=(s5,), rounds=1, iterations=1)
    print()
    print(render_sweep(pr, "lambda", title="Fig. 6a — PR vs lambda (S5)"))
    print(render_sweep(roc, "lambda", title="Fig. 6b — ROC vs lambda (S5)"))
    for method in ("RAE", "RDAE"):
        curve = pr[method]
        mid_peak = max(curve[1e-2], curve[1e-1])
        # Paper shape: the 1e-2..1e-1 region is at least as good as the
        # extremes of the sweep.
        assert mid_peak >= min(curve[1e-4], curve[1.0]) - 0.05, (
            "%s lambda curve lost its mid-range peak: %s" % (method, curve)
        )
        assert all(np.isfinite(list(curve.values())))
