"""Fig. 8: ablation study of RDAE (S5).

Paper shape: full RDAE beats RDAE-f1 (no smoothing transform), RDAE-f2 (no
outer series AE), RDAE-f1f2 (lagged-matrix only, ~ RDA), RSSA and RDAE+MA;
RDAE-f1 > RDAE-f2 (the outer AE matters more than the inner smoother).

Extended with the DESIGN.md §6 prox ablation: l1 (soft) vs l0 (hard)
thresholding inside RDAE.
"""

import numpy as np
import pytest

from repro.core import make_ablation
from repro.eval import make_detector

from conftest import FAST_OVERRIDES, score_detector

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

VARIANTS = ["RDAE", "RDAE-f1", "RDAE-f2", "RDAE-f1f2", "RDAE+MA"]
RDAE_FAST = FAST_OVERRIDES["RDAE"]


def run_ablation(s5):
    results = {}
    for name in VARIANTS:
        prs, rocs = [], []
        for ts in s5:
            det = make_ablation(name, **RDAE_FAST)
            pr, roc = score_detector(det, ts)
            prs.append(pr)
            rocs.append(roc)
        results[name] = (float(np.mean(prs)), float(np.mean(rocs)))
    # RSSA comparator.
    prs, rocs = [], []
    for ts in s5:
        pr, roc = score_detector(make_detector("RSSA"), ts)
        prs.append(pr)
        rocs.append(roc)
    results["RSSA"] = (float(np.mean(prs)), float(np.mean(rocs)))
    return results


@pytest.mark.benchmark(group="fig08")
def test_rdae_ablation(benchmark, s5):
    results = benchmark.pedantic(run_ablation, args=(s5,), rounds=1, iterations=1)
    print()
    print("Fig. 8 — RDAE ablation (S5): variant  PR  ROC")
    for name, (pr, roc) in results.items():
        print("  %-10s %.3f  %.3f" % (name, pr, roc))
    full_pr, full_roc = results["RDAE"]
    stripped_pr, __ = results["RDAE-f1f2"]
    # Paper shape: the full model is at least as good as the fully stripped
    # variant (tolerance for the scaled substrate's noise).
    assert full_pr >= stripped_pr - 0.1, (
        "full RDAE lost to RDAE-f1f2: %s" % (results,)
    )
    assert 0.0 <= full_roc <= 1.0


@pytest.mark.benchmark(group="fig08")
def test_prox_ablation_l1_vs_l0(benchmark, s5):
    """DESIGN.md §6: the l1 relaxation vs the original l0 objective."""

    def run():
        out = {}
        for prox in ("l1", "l0"):
            prs = []
            for ts in s5:
                det = make_ablation("RDAE", prox=prox, **RDAE_FAST)
                pr, __ = score_detector(det, ts)
                prs.append(pr)
            out[prox] = float(np.mean(prs))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Prox ablation (S5, PR): l1 = %.3f, l0 = %.3f" % (results["l1"], results["l0"]))
    assert all(np.isfinite(list(results.values())))


@pytest.mark.benchmark(group="fig08")
def test_dehankel_ablation(benchmark, s5):
    """DESIGN.md §6: anti-diagonal averaging vs endpoint readout."""

    def run():
        out = {}
        for dehankel in ("average", "endpoint"):
            rocs = []
            for ts in s5:
                det = make_ablation("RDAE", dehankel=dehankel, **RDAE_FAST)
                __, roc = score_detector(det, ts)
                rocs.append(roc)
            out[dehankel] = float(np.mean(rocs))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("De-Hankelization ablation (S5, ROC): average = %.3f, endpoint = %.3f"
          % (results["average"], results["endpoint"]))
    # Averaging is the least-squares readout; it must not lose badly.
    assert results["average"] >= results["endpoint"] - 0.05


@pytest.mark.benchmark(group="fig08")
def test_ensemble_extension(benchmark, s5):
    """Section VII future-work extension: the RAE ensemble vs a single RAE."""
    from repro.core import RobustEnsemble
    from repro.eval import make_detector as _make

    def run():
        single_rocs, ens_rocs = [], []
        for ts in s5:
            single = _make("RAE", max_iterations=10, seed=0)
            __, roc = score_detector(single, ts)
            single_rocs.append(roc)
            ens = RobustEnsemble(base="rae", n_members=3, max_iterations=10,
                                 seed=0)
            __, roc = score_detector(ens, ts)
            ens_rocs.append(roc)
        return float(np.mean(single_rocs)), float(np.mean(ens_rocs))

    single, ensemble = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ensemble extension (S5, ROC): single RAE = %.3f, 3-member ensemble = %.3f"
          % (single, ensemble))
    assert ensemble >= single - 0.05
