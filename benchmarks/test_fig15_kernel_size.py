"""Fig. 15: effect of the CNN kernel size (S5).

Paper shape: slightly better with larger kernels, overall insensitive.
"""

import pytest

from repro.eval import render_sweep

from conftest import mean_scores

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

KERNEL_SIZES = [3, 5, 7, 9, 11]


def sweep(s5):
    pr = {"RAE": {}, "RDAE": {}}
    roc = {"RAE": {}, "RDAE": {}}
    for size in KERNEL_SIZES:
        pr["RAE"][size], roc["RAE"][size] = mean_scores(
            "RAE", s5, kernel_size=size
        )
        pr["RDAE"][size], roc["RDAE"][size] = mean_scores(
            "RDAE", s5, kernel_size=size
        )
    return pr, roc


@pytest.mark.benchmark(group="fig15")
def test_kernel_size_sweep(benchmark, s5):
    pr, roc = benchmark.pedantic(sweep, args=(s5,), rounds=1, iterations=1)
    print()
    print(render_sweep(pr, "kernel_size", title="Fig. 15a — PR vs kernel size (S5)"))
    print(render_sweep(roc, "kernel_size", title="Fig. 15b — ROC vs kernel size (S5)"))
    for method in ("RAE", "RDAE"):
        values = list(roc[method].values())
        assert max(values) - min(values) < 0.25, (
            "%s too sensitive to kernel size: %s" % (method, roc[method])
        )
