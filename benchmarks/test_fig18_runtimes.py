"""Fig. 18: training runtime (seconds/epoch) of the neural methods (S5).

Paper shape (Titan V numbers): RDA 2.1 and RAE 4.2 are the fastest of the
robust family; RNNAE (121.7) and OMNI (85.4) are slowest due to recursive
computation; RDAE (34.6) stays competitive.  On the NumPy substrate the
absolute numbers shrink but the recursive-vs-convolutional ordering holds.
"""

import pytest

from conftest import fast_detector

METHODS = ["RN", "CNNAE", "RNNAE", "BGAN", "DONUT", "OMNI", "TAE", "RDA",
           "RAE", "RDAE"]


def run(ts):
    runtimes = {}
    for method in METHODS:
        det = fast_detector(method).fit(ts)
        runtimes[method] = det.seconds_per_epoch
    return runtimes


@pytest.mark.benchmark(group="fig18")
def test_training_runtimes(benchmark, s5_series):
    runtimes = benchmark.pedantic(run, args=(s5_series,), rounds=1, iterations=1)
    print()
    print("Fig. 18 — seconds/epoch (S5, NumPy substrate):")
    for method, seconds in sorted(runtimes.items(), key=lambda kv: kv[1]):
        print("  %-6s %.4f" % (method, seconds))
    # Paper shape: recursive methods cost more per epoch than convolutional
    # ones on the same series.
    assert runtimes["RNNAE"] > runtimes["CNNAE"], runtimes
    assert runtimes["OMNI"] > runtimes["CNNAE"], runtimes
    assert all(v > 0 for v in runtimes.values())
