"""Table II: overall accuracy (PR-AUC) of all 17 methods on all 7 datasets.

Paper shape: RAE and RDAE achieve the best and second-best *average* PR-AUC
(0.251 / 0.267 in the paper); distance/partition methods (LOF, ISF) win on
the trajectory-style datasets HSS and 2D.
"""

import pytest

from repro.eval import render_table, run_suite

from conftest import FAST_DATASET_KWARGS, FAST_OVERRIDES, SCALE

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

ALL_METHODS = [
    "OCSVM", "LOF", "ISF", "EMA", "STL", "SSA", "MP", "RN", "CNNAE",
    "RNNAE", "BGAN", "DONUT", "OMNI", "TAE", "RDA", "RAE", "RDAE",
]
ALL_DATASETS = ["GD", "HSS", "ECG", "NAB", "S5", "2D", "SYN"]

_cache = {}


def full_suite():
    if "result" not in _cache:
        _cache["result"] = run_suite(
            ALL_METHODS,
            ALL_DATASETS,
            scale=SCALE,
            max_series=1,
            overrides=FAST_OVERRIDES,
            dataset_kwargs=FAST_DATASET_KWARGS,
        )
    return _cache["result"]


@pytest.mark.benchmark(group="table2")
def test_table2_overall_pr(benchmark):
    result = benchmark.pedantic(full_suite, rounds=1, iterations=1)
    print()
    print(render_table(result, "pr", title="Table II — Overall Accuracy, PR"))
    averages = result.averages("pr")
    ranked = sorted(averages, key=averages.get, reverse=True)
    print("PR average ranking:", " > ".join(ranked))
    # Paper shape: the proposed methods place at the top of the average row.
    assert ranked.index("RDAE") < len(ranked) // 2 or ranked.index("RAE") < len(ranked) // 2, (
        "neither RAE nor RDAE reached the top half of the PR averages: %s" % ranked
    )
    # Every method produced valid scores everywhere.
    for dataset in result.datasets:
        for method in result.methods:
            assert 0.0 <= result.pr[dataset][method] <= 1.0
