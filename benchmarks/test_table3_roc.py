"""Table III: overall accuracy (ROC-AUC) of all 17 methods on all 7 datasets.

Paper shape: RAE/RDAE hold the two best averages (0.636 / 0.649); LOF/ISF
stay competitive on HSS and 2D.  Reuses the suite computed for Table II when
both benchmarks run in one session.
"""

import pytest

from repro.eval import render_table

from test_table2_pr import full_suite

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow


@pytest.mark.benchmark(group="table3")
def test_table3_overall_roc(benchmark):
    result = benchmark.pedantic(full_suite, rounds=1, iterations=1)
    print()
    print(render_table(result, "roc", title="Table III — Overall Accuracy, ROC"))
    averages = result.averages("roc")
    ranked = sorted(averages, key=averages.get, reverse=True)
    print("ROC average ranking:", " > ".join(ranked))
    assert ranked.index("RDAE") < len(ranked) // 2 or ranked.index("RAE") < len(ranked) // 2, (
        "neither RAE nor RDAE reached the top half of the ROC averages: %s" % ranked
    )
    # ROC of a usable detector should beat coin flipping on average.
    assert averages["RDAE"] > 0.5 and averages["RAE"] > 0.5
