"""Shared configuration for the paper-reproduction benchmarks.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper's Section V at laptop scale (DESIGN.md §4 maps experiment ids to
modules).  Benchmarks print the rows/series the paper reports; EXPERIMENTS.md
records paper-vs-measured values.

Scaling: datasets are generated with small ``scale`` factors and the neural
methods run with reduced epochs/kernels.  The *shapes* of the results (who
wins, where the sweet spots fall) are asserted; absolute values are not.
"""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.eval import evaluate_on_dataset, make_detector
from repro.metrics import pr_auc, roc_auc

# Per-method overrides that keep the full suite runnable on a laptop while
# preserving each method's structure.
FAST_OVERRIDES = {
    "OCSVM": {"iterations": 200, "max_points": 400},
    "ISF": {"n_trees": 25, "subsample": 96},
    "RN": {"n_models": 3, "epochs": 5},
    "CNNAE": {"epochs": 8},
    "RNNAE": {"epochs": 4, "hidden": 12},
    "BGAN": {"epochs": 5},
    "DONUT": {"epochs": 8},
    "OMNI": {"epochs": 3, "hidden": 12},
    "TAE": {"epochs": 4, "d_model": 16, "num_heads": 2},
    "RDA": {"outer_iterations": 3, "inner_epochs": 3},
    "RAE": {"max_iterations": 15},
    "RDAE": {
        "window": 30,
        "max_outer": 2,
        "inner_iterations": 5,
        "series_iterations": 5,
    },
    "N-RAE": {"epochs": 15},
    "N-RDAE": {"window": 30, "epochs": 5},
}

# Dataset generator arguments that cap the corpus size per dataset.
FAST_DATASET_KWARGS = {
    "S5": {"num_series": 2},
    "SYN": {"num_series": 2},
    "NAB": {"series_per_domain": 1},
}

SCALE = 0.05


def fast_detector(method, **extra):
    """Build a method with the benchmark-speed overrides applied."""
    return make_detector(method, **{**FAST_OVERRIDES.get(method, {}), **extra})


def score_method_on_dataset(method, dataset, **extra):
    """Mean (PR, ROC) of a method over a dataset with fast overrides."""
    return evaluate_on_dataset(lambda: fast_detector(method, **extra), dataset)


def score_detector(detector, ts):
    """(PR, ROC) of one fitted-from-scratch detector on one series."""
    scores = detector.fit_score(ts)
    return pr_auc(ts.labels, scores), roc_auc(ts.labels, scores)


@pytest.fixture(scope="session")
def s5():
    """The S5 surrogate used by most sensitivity studies (Figs. 6-18).

    Uses a harder variant (more noise, subtler outliers) than the Table II/III
    corpus so the sweep curves do not saturate at 1.0.
    """
    return load_dataset("S5", seed=0, scale=0.2, num_series=2, noise=0.3,
                        magnitude=(1.8, 3.5))


@pytest.fixture(scope="session")
def s5_series(s5):
    """A single S5 series for per-series studies (Figs. 16-17)."""
    return s5[0]


def mean_scores(method, dataset, **extra):
    prs, rocs = [], []
    for ts in dataset:
        if ts.labels.sum() in (0, ts.labels.size):
            continue
        det = fast_detector(method, **extra)
        pr, roc = score_detector(det, ts)
        prs.append(pr)
        rocs.append(roc)
    return float(np.mean(prs)), float(np.mean(rocs))
