"""Fig. 16: post-hoc explainability analysis (PHE-PRM and PHE-SSA, S5).

Paper shape: for every N, the clean series of RAE/RDAE have the lowest RMSE
under both post-hoc models; at gamma_prm = 0.5 both methods achieve
ES_PRM = 1 while CNNAE/DONUT/RN fail to reach the threshold at degree 9.

Substrate caveat (recorded in EXPERIMENTS.md): an *under-trained* plain AE
outputs an amplitude-collapsed, near-flat reconstruction that trivially
minimises the RMSE — the paper's "framework C" pathology (Fig. 5d, high
explainability score but meaningless).  The comparison is therefore run
with baselines trained to convergence, and the assertion is restricted to
methods whose clean series actually tracks the input (tracking RMSE below
0.7 on the standardised series).
"""

import numpy as np
import pytest

from repro.eval import render_sweep
from repro.explain import analyze_methods, extract_clean_series
from repro.metrics import roc_auc
from repro.tsops import standardize

from conftest import fast_detector

METHODS = ["CNNAE", "RNNAE", "RN", "DONUT", "RDA", "RAE", "RDAE"]

# Convergence-grade training for the plain AEs (see module docstring).
CONVERGED = {
    "CNNAE": {"epochs": 40},
    "RNNAE": {"epochs": 20, "hidden": 32},
    "RN": {"epochs": 20, "n_models": 3},
    "DONUT": {"epochs": 40},
    "RDA": {"outer_iterations": 5, "inner_epochs": 5},
}

TRACKING_THRESHOLD = 0.7


def run(ts):
    fitted = {}
    for method in METHODS:
        fitted[method] = fast_detector(method, **CONVERGED.get(method, {})).fit(ts)
    report = analyze_methods(fitted, ts, gamma_prm=0.5, gamma_ssa=0.15)
    arr = standardize(np.asarray(ts.values))
    tracking = {}
    accuracy = {}
    for method, det in fitted.items():
        clean = extract_clean_series(det, ts)
        tracking[method] = float(np.sqrt(np.mean((clean - arr) ** 2)))
        accuracy[method] = roc_auc(ts.labels, det.score(ts))
    return report, tracking, accuracy


@pytest.mark.benchmark(group="fig16")
def test_explainability(benchmark, s5_series):
    report, tracking, accuracy = benchmark.pedantic(
        run, args=(s5_series,), rounds=1, iterations=1
    )
    print()
    print(render_sweep(report.prm_curves, "N", title="Fig. 16a — PHE-PRM RMSE vs N (S5)"))
    print(render_sweep(report.ssa_curves, "N", title="Fig. 16b — PHE-SSA RMSE vs N (S5)"))
    print("Scores (gamma_prm=%.2f, gamma_ssa=%.2f) + diagnostics:"
          % (report.gamma_prm, report.gamma_ssa))
    for name, entry in report.scores.items():
        print("  %-6s ES_PRM=%-4s ES_SSA=%-4s track-RMSE=%.3f ROC=%.3f"
              % (name, entry["ES_PRM"], entry["ES_SSA"], tracking[name],
                 accuracy[name]))

    mean_rmse = {
        name: float(np.mean(list(curve.values())))
        for name, curve in report.prm_curves.items()
    }
    trackers = [m for m in METHODS if tracking[m] <= TRACKING_THRESHOLD]
    print("tracking methods (RMSE <= %.1f): %s" % (TRACKING_THRESHOLD, trackers))
    assert "RAE" in trackers and "RDAE" in trackers, (
        "the robust decompositions stopped tracking the input: %s" % tracking
    )
    plain_trackers = [m for m in trackers if m not in ("RAE", "RDAE")]
    if plain_trackers:
        robust_best = min(mean_rmse["RAE"], mean_rmse["RDAE"])
        plain_best = min(mean_rmse[m] for m in plain_trackers)
        print("mean PHE-PRM RMSE among trackers: robust best %.3f, plain best %.3f"
              % (robust_best, plain_best))
        # Paper shape among non-degenerate methods: the robust clean series
        # is the simplest to explain.
        assert robust_best <= plain_best + 0.05, (
            "robust methods lost the explainability comparison: %s" % mean_rmse
        )
