"""Training throughput: tape-compiled fits must beat eager, bit-identically.

Three claims are measured (and the raw numbers recorded under
``bench-results/`` so BENCH trajectories can accumulate across PRs):

1. ``train_reconstruction`` — the unit the tape compiles — replays markedly
   faster than eager graph-rebuilding at paper-default RAE architecture.
2. ``RAE().fit`` end-to-end is faster with the tape and produces
   bit-identical scores, decomposition, and convergence trace.
3. ``RobustEnsemble.fit(n_jobs=N)`` fits members concurrently with
   bit-identical results to serial; wall-clock scaling is asserted only on
   multi-core hosts (member fits are BLAS-bound; one core serialises them).
4. ``RobustEnsemble.fit(compile="batched")`` — tape v2's batched replay —
   fits an identical-spec 8-member group as one leading-axis-batched tape
   program, >=2x faster than the threaded member fits on one core and
   bit-identical to them (the identity is asserted on every host).

Context for the speedup floors: this PR also rewrote the conv1d/conv2d
kernels from im2col einsum to per-tap GEMM, which made *eager* fits ~2-3x
faster than the previous release.  The asserted tape-vs-eager ratios are on
top of that faster eager baseline (combined, a paper-default ``RAE().fit``
on a 10k-point series runs >2x faster than before this PR); asserting
against the shipped eager path keeps the comparison honest.

Timings use CPU time (``time.process_time``) with interleaved A/B rounds
and medians: the ratio assertions must not flake on a loaded CI runner.

``REPRO_BENCH_TINY=1`` shrinks every size so CI smoke runs exercise the
measured paths end-to-end in seconds; wall-clock/CPU ratio assertions are
skipped in tiny mode (the bit-identity assertions are not).
"""

import json
import os
import time

import numpy as np
import pytest

from repro import nn
from repro.core import RAE, RobustEnsemble
from repro.core.autoencoders import ConvSeriesAE, train_reconstruction
from repro.nn import tape as nntape

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"
LENGTH = 1_200 if TINY else 10_000
STEP_LENGTH = 800 if TINY else 5_000
FIT_ITERATIONS = 2 if TINY else 6
ROUNDS = 1 if TINY else 3

RESULTS_DIR = os.environ.get("REPRO_BENCH_DIR", "bench-results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "train_throughput.json")


def _record_result(key, payload, skipped_reason=None):
    """Merge one benchmark's raw numbers into the trajectory JSON.

    ``skipped_reason`` marks a record whose ratio claim could not be
    meaningfully measured on this host (single core, tiny mode): the raw
    timings are still recorded, but no ``speedup`` field is — a sub-1x
    "speedup" measured where nothing could overlap is not a regression,
    and must not enter the BENCH trajectory looking like one.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            data = json.load(handle)
    payload = dict(payload, tiny=TINY, cpu_count=os.cpu_count())
    if skipped_reason is not None:
        payload.pop("speedup", None)
        payload["skipped_reason"] = skipped_reason
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


def make_series(seed, length=LENGTH):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return (np.sin(2 * np.pi * t / 50)
            + 0.1 * rng.standard_normal(length))[:, None]


def _with_tape(enabled, fn):
    previous = nntape.set_tape_enabled(enabled)
    try:
        return fn()
    finally:
        nntape.set_tape_enabled(previous)


@pytest.mark.slow
def test_train_step_tape_replay_beats_eager():
    """The compiled unit: repeated train_reconstruction calls on one model
    (the ADMM pattern) must replay faster than eager graph rebuilding.

    ``slow``-marked like the other thin-margin ratio benchmarks: timing
    ratios this small (1.2-1.5x on an idle 1-core host) flake under the
    allocator/CPU state a full tier-1 run leaves behind.  CI's bench-smoke
    job still runs it tiny (bit-identity asserted, ratios recorded).

    Eager and tape steps alternate call-by-call on two live models, so a
    noisy/contended runner degrades both sides alike and the asserted
    ratio stays meaningful."""
    x = make_series(0, STEP_LENGTH).T[None]  # (1, 1, L)

    def build():
        model = ConvSeriesAE(1, rng=np.random.default_rng(0))
        optimizer = nn.Adam(model.parameters(), lr=1e-2)
        train_reconstruction(model, optimizer, x, epochs=3)  # warm/record
        return model, optimizer

    eager_model, eager_opt = _with_tape(False, build)
    tape_model, tape_opt = _with_tape(True, build)

    def one_step(enabled, model, optimizer):
        def run():
            started = time.process_time()
            train_reconstruction(model, optimizer, x, epochs=3)
            return time.process_time() - started
        return _with_tape(enabled, run)

    eager_s, tape_s = [], []
    for __ in range(4 if TINY else 20 * ROUNDS):
        eager_s.append(one_step(False, eager_model, eager_opt))
        tape_s.append(one_step(True, tape_model, tape_opt))
    eager, tape = float(np.median(eager_s)), float(np.median(tape_s))
    speedup = eager / max(tape, 1e-12)
    print("\ntrain_reconstruction(epochs=3) at L=%d: eager %.2f ms, "
          "tape %.2f ms (%.2fx)" % (STEP_LENGTH, 1e3 * eager, 1e3 * tape, speedup))
    _record_result("train_step", {
        "length": STEP_LENGTH, "eager_ms": 1e3 * eager, "tape_ms": 1e3 * tape,
        "speedup": speedup,
    })
    if not TINY:
        assert speedup >= 1.2, (
            "tape replay only %.2fx faster than eager graph rebuild" % speedup
        )


@pytest.mark.slow
def test_rae_fit_tape_speedup_and_bit_identity():
    """End-to-end RAE().fit at paper-default architecture on a long series:
    faster with the tape, and bit-identical — scores, clean series, and the
    full convergence trace (asserted, not eyeballed).

    The honest numbers, for the record: the tape replays the fit 1.2-1.35x
    faster than the *shipped* eager path.  The ISSUE's ≥2x target is met
    only against the pre-PR baseline — this PR's per-tap GEMM kernel
    rewrite made eager itself ~2x faster, and asserting against that
    faster eager keeps the comparison honest (see CHANGES.md)."""
    series = make_series(1)

    def fit():
        detector = RAE(max_iterations=FIT_ITERATIONS)
        started = time.process_time()
        detector.fit(series)
        return time.process_time() - started, detector

    _with_tape(True, fit)  # warm caches/BLAS before timing
    eager_s, tape_s = [], []
    for __ in range(ROUNDS):
        elapsed, eager_det = _with_tape(False, fit)
        eager_s.append(elapsed)
        elapsed, tape_det = _with_tape(True, fit)
        tape_s.append(elapsed)

    # The contract, independent of timing: identical fixed-seed results.
    assert np.array_equal(eager_det.score(series), tape_det.score(series))
    assert np.array_equal(eager_det.clean_series, tape_det.clean_series)
    assert np.array_equal(eager_det.outlier_series, tape_det.outlier_series)
    assert eager_det.trace_.rmse == tape_det.trace_.rmse
    assert eager_det.trace_.condition1 == tape_det.trace_.condition1
    assert eager_det.trace_.condition2 == tape_det.trace_.condition2

    eager, tape = float(np.median(eager_s)), float(np.median(tape_s))
    speedup = eager / max(tape, 1e-12)
    print("\nRAE(paper-default).fit on %d points (%d iterations): "
          "eager %.3f s, tape %.3f s (%.2fx, bit-identical)"
          % (LENGTH, FIT_ITERATIONS, eager, tape, speedup))
    _record_result("rae_fit", {
        "length": LENGTH, "iterations": FIT_ITERATIONS,
        "eager_s": eager, "tape_s": tape, "speedup": speedup,
    })
    if not TINY:
        assert speedup >= 1.1, (
            "tape-compiled RAE fit only %.2fx faster than eager" % speedup
        )


def _time_ensemble_pair(length, members, iterations):
    series = make_series(2, length)
    kwargs = dict(base="rae", n_members=members, seed=0,
                  max_iterations=iterations)
    started = time.perf_counter()
    serial = RobustEnsemble(n_jobs=1, **kwargs).fit(series)
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    threaded = RobustEnsemble(n_jobs=-1, **kwargs).fit(series)
    threaded_s = time.perf_counter() - started
    return series, serial, threaded, serial_s, threaded_s


def test_ensemble_n_jobs_determinism():
    """Threaded member fits are bit-identical to serial — the part of the
    n_jobs contract that must hold on every host, every run."""
    series, serial, threaded, serial_s, threaded_s = _time_ensemble_pair(
        900 if TINY else 3_000, 3 if TINY else 5, 1 if TINY else 3
    )
    assert np.array_equal(serial.score(series), threaded.score(series))
    assert np.array_equal(serial.clean_series, threaded.clean_series)
    for a, b in zip(serial.members_, threaded.members_):
        assert np.array_equal(a.score(series), b.score(series))

    cores = os.cpu_count() or 1
    speedup = serial_s / max(threaded_s, 1e-12)
    print("\n%d-member ensemble fit on %d points: serial %.2f s, "
          "n_jobs=-1 %.2f s (%.2fx on %d cores, bit-identical)"
          % (serial.n_members, series.shape[0], serial_s, threaded_s,
             speedup, cores))
    if TINY:
        reason = "tiny mode: sizes too small for a meaningful ratio"
    elif cores < 2:
        reason = ("single-core host: threaded fits cannot overlap, "
                  "ratio not meaningful")
    else:
        reason = None
    _record_result("ensemble_n_jobs", {
        "members": serial.n_members, "length": int(series.shape[0]),
        "serial_s": serial_s, "threaded_s": threaded_s, "speedup": speedup,
    }, skipped_reason=reason)


def _time_batched_pair(length, iterations, rounds):
    """Interleaved threaded-vs-batched ensemble fits, median of rounds."""
    series = make_series(3, length)
    kwargs = dict(base="rae", n_members=8, jitter=False, kernels=8, seed=0,
                  max_iterations=iterations, epochs_per_iteration=3)
    threaded_s, batched_s = [], []
    threaded = batched = None
    for __ in range(rounds):
        started = time.perf_counter()
        threaded = RobustEnsemble(n_jobs=-1, **kwargs).fit(series)
        threaded_s.append(time.perf_counter() - started)
        started = time.perf_counter()
        batched = RobustEnsemble(compile="batched", **kwargs).fit(series)
        batched_s.append(time.perf_counter() - started)
    return (series, threaded, batched,
            float(np.median(threaded_s)), float(np.median(batched_s)))


def test_ensemble_batched_replay_beats_threaded():
    """The tape v2 headline: an 8-member identical-spec ensemble fitted as
    one leading-axis-batched tape replay must beat the threaded member
    fits >=2x on one core, bit-identically.

    Threads cannot overlap the interpreter-bound share of a member fit on
    one core (and the GIL serialises it on any core); the batched program
    replaces 8 python training loops with one stacked-GEMM program, so one
    replayed epoch trains every member.  The bit-identity half of the
    contract is asserted on every host and in tiny mode; the ratio is
    asserted where the claim is defined — full sizes, single core — and
    recorded (with ``skipped_reason``) elsewhere, per the BENCH-trajectory
    convention.
    """
    cores = os.cpu_count() or 1
    series, threaded, batched, threaded_s, batched_s = _time_batched_pair(
        150 if TINY else 200, 3 if TINY else 10, 1 if TINY else ROUNDS
    )

    # The contract, independent of timing: bit-identical members.
    assert batched.compile_fallback_ == []
    assert np.array_equal(threaded.score(series), batched.score(series))
    assert np.array_equal(threaded.clean_series, batched.clean_series)
    for a, b in zip(threaded.members_, batched.members_):
        assert np.array_equal(a.score(series), b.score(series))

    speedup = threaded_s / max(batched_s, 1e-12)
    print("\n8-member batched ensemble on %d points: n_jobs=-1 %.3f s, "
          "compile='batched' %.3f s (%.2fx on %d cores, bit-identical)"
          % (series.shape[0], threaded_s, batched_s, speedup, cores))
    if TINY:
        reason = "tiny mode: sizes too small for a meaningful ratio"
    elif cores > 1:
        reason = ("multi-core host: threaded member fits overlap, the "
                  "1-core replay claim is out of scope")
    else:
        reason = None
    _record_result("ensemble_batched", {
        "members": 8, "length": int(series.shape[0]),
        "iterations": 3 if TINY else 10,
        "threaded_s": threaded_s, "batched_s": batched_s, "speedup": speedup,
    }, skipped_reason=reason)
    if reason is None:
        assert speedup >= 2.0, (
            "batched ensemble replay only %.2fx faster than threaded "
            "member fits on one core" % speedup
        )


@pytest.mark.slow
def test_ensemble_batched_multicore_numbers():
    """Multi-core record: threaded fits overlap BLAS across cores, the
    batched replay stays single-threaded python over bigger GEMMs — the
    trajectory wants both numbers wherever they can be measured."""
    cores = os.cpu_count() or 1
    if TINY or cores < 2:
        _record_result("ensemble_batched_multicore", {}, skipped_reason=(
            "needs >=2 cores and full sizes for a meaningful comparison"))
        pytest.skip("needs >=2 cores and full sizes")
    series, threaded, batched, threaded_s, batched_s = _time_batched_pair(
        200, 10, ROUNDS
    )
    assert np.array_equal(threaded.score(series), batched.score(series))
    speedup = threaded_s / max(batched_s, 1e-12)
    print("\nmulti-core: n_jobs=-1 %.3f s vs batched %.3f s (%.2fx on %d "
          "cores)" % (threaded_s, batched_s, speedup, cores))
    _record_result("ensemble_batched_multicore", {
        "members": 8, "length": int(series.shape[0]), "cores": cores,
        "threaded_s": threaded_s, "batched_s": batched_s, "speedup": speedup,
    })


@pytest.mark.slow
def test_ensemble_n_jobs_scaling():
    """Wall-clock scaling of threaded member fits — multi-core hosts only
    (one core serialises the BLAS-bound member fits)."""
    cores = os.cpu_count() or 1
    if TINY or cores < 4:
        _record_result("ensemble_scaling", {}, skipped_reason=(
            "needs >=4 cores and full sizes for a meaningful ratio"))
        pytest.skip("needs >=4 cores and full sizes for a meaningful ratio")
    __, __, __, serial_s, threaded_s = _time_ensemble_pair(3_000, 5, 3)
    speedup = serial_s / max(threaded_s, 1e-12)
    print("\nensemble scaling: serial %.2f s, threaded %.2f s (%.2fx on %d "
          "cores)" % (serial_s, threaded_s, speedup, cores))
    _record_result("ensemble_scaling", {
        "serial_s": serial_s, "threaded_s": threaded_s, "speedup": speedup,
    })
    assert speedup >= 1.3, (
        "threaded ensemble fit only %.2fx faster on %d cores"
        % (speedup, cores)
    )
