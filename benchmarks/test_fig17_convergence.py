"""Fig. 17: empirical convergence of RAE and RDAE (S5).

Paper shape: RMSE(T, T_L) decreases and flattens within the first tens of
iterations for every lambda and every window B; convergence is sensitive to
lambda (smaller lambda converges to lower RMSE) but insensitive to B.
"""

import numpy as np
import pytest

from repro.eval import make_detector

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

LAMBDAS = [1e-3, 1e-1, 1.0]
WINDOWS = [10, 30, 60]


def run(ts):
    traces = {"rae_lambda": {}, "rdae_lambda": {}, "rdae_window": {}}
    for lam in LAMBDAS:
        det = make_detector("RAE", lam=lam, max_iterations=20).fit(ts)
        traces["rae_lambda"][lam] = det.trace_.rmse
        det = make_detector(
            "RDAE", lam1=lam, lam2=lam, window=30, max_outer=4,
            inner_iterations=4, series_iterations=4,
        ).fit(ts)
        traces["rdae_lambda"][lam] = det.trace_.rmse
    for window in WINDOWS:
        det = make_detector(
            "RDAE", window=window, max_outer=4, inner_iterations=4,
            series_iterations=4,
        ).fit(ts)
        traces["rdae_window"][window] = det.trace_.rmse
    return traces


@pytest.mark.benchmark(group="fig17")
def test_convergence(benchmark, s5_series):
    traces = benchmark.pedantic(run, args=(s5_series,), rounds=1, iterations=1)
    print()
    for study, curves in traces.items():
        print("Fig. 17 — %s:" % study)
        for key, rmse in curves.items():
            print("  %-8s %s" % (key, " ".join("%.3f" % v for v in rmse)))
    # All runs converge: traces stabilise (small step-to-step movement at
    # the tail).  Note RMSE(T, T_L) can legitimately *rise* for tiny lambda
    # — the objective then pushes everything into T_S — so monotone descent
    # is not the right check.
    for curves in traces.values():
        for rmse in curves.values():
            assert len(rmse) >= 1
            assert np.isfinite(rmse).all()
            if len(rmse) >= 3:
                head_step = abs(rmse[1] - rmse[0])
                tail_step = abs(rmse[-1] - rmse[-2])
                assert tail_step <= max(head_step, 0.05) + 1e-9, (
                    "trace still moving at the tail: %s" % rmse
                )
    # Sensitivity to lambda: different lambdas end at different RMSE levels.
    finals = [traces["rae_lambda"][lam][-1] for lam in LAMBDAS]
    assert max(finals) - min(finals) > 1e-4
