"""Fig. 7: effect of the lagged-matrix window B on PR/ROC (S5).

Paper shape: SSA, RSSA and RDAE all peak at mid-to-large windows (B = 200
at the paper's C ~ 1400; here the series are ~280 observations so the sweep
covers B in {10..100} with the paper's B < C/2 constraint) and degrade at
tiny windows.
"""

import numpy as np
import pytest

from repro.eval import render_sweep

from conftest import mean_scores

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

WINDOWS = [10, 20, 50, 100]


def sweep(s5):
    pr = {"SSA": {}, "RSSA": {}, "RDAE": {}}
    roc = {"SSA": {}, "RSSA": {}, "RDAE": {}}
    for window in WINDOWS:
        pr["SSA"][window], roc["SSA"][window] = mean_scores("SSA", s5, window=window)
        pr["RSSA"][window], roc["RSSA"][window] = mean_scores(
            "RSSA", s5, window=window
        )
        pr["RDAE"][window], roc["RDAE"][window] = mean_scores(
            "RDAE", s5, window=window
        )
    return pr, roc


@pytest.mark.benchmark(group="fig07")
def test_window_sweep(benchmark, s5):
    pr, roc = benchmark.pedantic(sweep, args=(s5,), rounds=1, iterations=1)
    print()
    print(render_sweep(pr, "B", title="Fig. 7a — PR vs window B (S5)"))
    print(render_sweep(roc, "B", title="Fig. 7b — ROC vs window B (S5)"))
    for method, curve in roc.items():
        assert all(np.isfinite(list(curve.values())))
        # Paper shape: the best window is not the smallest one.
        best = max(curve, key=curve.get)
        assert best != WINDOWS[0] or curve[best] - curve[WINDOWS[-1]] < 0.05, (
            "%s peaked at the smallest window: %s" % (method, curve)
        )
