"""Fig. 13: effect of the number of hidden CNN layers (S5).

Paper shape: accuracy is insensitive to the layer count (slightly better
with more layers) — random choices of this hyperparameter stay safe.
"""

import numpy as np
import pytest

from repro.eval import render_sweep

from conftest import mean_scores

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

LAYER_COUNTS = [3, 5, 7]


def sweep(s5):
    pr = {"RAE": {}, "RDAE": {}}
    roc = {"RAE": {}, "RDAE": {}}
    for layers in LAYER_COUNTS:
        pr["RAE"][layers], roc["RAE"][layers] = mean_scores(
            "RAE", s5, num_layers=layers
        )
        pr["RDAE"][layers], roc["RDAE"][layers] = mean_scores(
            "RDAE", s5, num_layers=layers
        )
    return pr, roc


@pytest.mark.benchmark(group="fig13")
def test_layer_sweep(benchmark, s5):
    pr, roc = benchmark.pedantic(sweep, args=(s5,), rounds=1, iterations=1)
    print()
    print(render_sweep(pr, "layers", title="Fig. 13a — PR vs #layers (S5)"))
    print(render_sweep(roc, "layers", title="Fig. 13b — ROC vs #layers (S5)"))
    for method in ("RAE", "RDAE"):
        values = list(roc[method].values())
        # Paper shape: insensitive — the spread across settings stays small.
        assert max(values) - min(values) < 0.25, (
            "%s too sensitive to layer count: %s" % (method, roc[method])
        )
