"""Section V-A protocol: median result of random hyperparameter search.

The paper explores 200 random configurations per method and reports the
median (never the best) because unsupervised detection cannot tune on
labels.  This benchmark runs the protocol at reduced draw count and checks
its defining property: the reported result is neither the best nor the
worst explored configuration.
"""

import pytest

from repro.datasets import load_dataset
from repro.eval import random_search_median


@pytest.mark.benchmark(group="protocol")
def test_median_of_random_search(benchmark):
    dataset = load_dataset("SYN", seed=0, scale=0.1, num_series=2)

    def run():
        out = {}
        for method, fixed in (
            ("EMA", {}),
            ("SSA", {}),
            ("RAE", {"max_iterations": 8}),
        ):
            median, trials = random_search_median(
                method, dataset, n_draws=5, seed=0, **fixed
            )
            out[method] = (median, trials)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Median-of-random-search protocol (SYN, 5 draws):")
    for method, (median, trials) in results.items():
        prs = sorted(t.pr for t in trials)
        print("  %-4s median PR %.3f  (explored: %s)"
              % (method, median.pr, " ".join("%.3f" % p for p in prs)))
        assert prs[0] <= median.pr <= prs[-1]
        if prs[0] < prs[-1]:
            # The median must not be the optimistic extreme.
            assert median.pr < prs[-1] or prs.count(prs[-1]) > len(prs) // 2
