"""Fig. 14: effect of the number of CNN kernels per layer (S5).

Paper shape: slightly better with more kernels, overall insensitive.
The paper sweeps {32..1024}; the NumPy substrate sweeps {4..32}, preserving
the relative range.
"""

import pytest

from repro.eval import render_sweep

from conftest import mean_scores

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

KERNELS = [4, 8, 16, 32]


def sweep(s5):
    pr = {"RAE": {}, "RDAE": {}}
    roc = {"RAE": {}, "RDAE": {}}
    for kernels in KERNELS:
        pr["RAE"][kernels], roc["RAE"][kernels] = mean_scores(
            "RAE", s5, kernels=kernels
        )
        pr["RDAE"][kernels], roc["RDAE"][kernels] = mean_scores(
            "RDAE", s5, kernels=kernels
        )
    return pr, roc


@pytest.mark.benchmark(group="fig14")
def test_kernel_count_sweep(benchmark, s5):
    pr, roc = benchmark.pedantic(sweep, args=(s5,), rounds=1, iterations=1)
    print()
    print(render_sweep(pr, "kernels", title="Fig. 14a — PR vs #kernels (S5)"))
    print(render_sweep(roc, "kernels", title="Fig. 14b — ROC vs #kernels (S5)"))
    for method in ("RAE", "RDAE"):
        values = list(roc[method].values())
        assert max(values) - min(values) < 0.25, (
            "%s too sensitive to kernel count: %s" % (method, roc[method])
        )
