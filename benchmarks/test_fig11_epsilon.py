"""Fig. 11: effect of the stopping tolerance epsilon (S5).

Paper shape: accuracy is flat for eps in [1e-7, 1e-3] and drops for larger
eps because the ADMM loop halts before the decomposition converges; below
1e-5 nothing changes except runtime — supporting the paper's default 1e-5.
"""

import numpy as np
import pytest

from repro.eval import render_sweep

from conftest import mean_scores

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

EPSILONS = [1e-7, 1e-5, 1e-3, 1e-1, 1.0]


def sweep(s5):
    pr = {"RAE": {}, "RDAE": {}}
    roc = {"RAE": {}, "RDAE": {}}
    for eps in EPSILONS:
        pr["RAE"][eps], roc["RAE"][eps] = mean_scores("RAE", s5, epsilon=eps)
        pr["RDAE"][eps], roc["RDAE"][eps] = mean_scores("RDAE", s5, epsilon=eps)
    return pr, roc


@pytest.mark.benchmark(group="fig11")
def test_epsilon_sweep(benchmark, s5):
    pr, roc = benchmark.pedantic(sweep, args=(s5,), rounds=1, iterations=1)
    print()
    print(render_sweep(pr, "epsilon", title="Fig. 11a — PR vs epsilon (S5)"))
    print(render_sweep(roc, "epsilon", title="Fig. 11b — ROC vs epsilon (S5)"))
    for method in ("RAE", "RDAE"):
        tight = roc[method][1e-7]
        default = roc[method][1e-5]
        # Paper shape: tightening below the default changes little.
        assert abs(tight - default) < 0.15, (
            "%s unstable between eps 1e-7 and 1e-5: %s" % (method, roc[method])
        )
        assert all(np.isfinite(list(roc[method].values())))
