"""Section V-B significance study: t-tests of RAE/RDAE vs the baselines.

Paper shape: p-values below 0.005 for both metrics against the
state-of-the-art.  At benchmark scale (7 datasets, 1 series each) we assert
the machinery and report the p-values rather than the paper's threshold.
"""

import pytest

from repro.eval import significance_against_best_baseline

from test_table2_pr import full_suite

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow


@pytest.mark.benchmark(group="significance")
def test_ttest_vs_baselines(benchmark):
    result = full_suite()
    tests = benchmark.pedantic(
        lambda: significance_against_best_baseline(result, proposed=("RAE", "RDAE")),
        rounds=1,
        iterations=1,
    )
    print()
    for method, versus in tests.items():
        for baseline, p_value in sorted(versus.items(), key=lambda kv: kv[1]):
            print("%s vs %-6s p = %.4f" % (method, baseline, p_value))
    for versus in tests.values():
        for p_value in versus.values():
            assert 0.0 <= p_value <= 1.0
