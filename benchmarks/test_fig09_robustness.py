"""Fig. 9: robustness study — RAE vs N-RAE and RDAE vs N-RDAE.

Paper shape: each robust method outperforms its non-robust counterpart,
because even the few outliers in the training series pollute the plain AEs'
latent representations.  The gap widens with contamination, so the study
runs on a SYN variant with a heavier outlier ratio than S5.
"""

import numpy as np
import pytest

from repro.datasets import load_dataset

from conftest import mean_scores

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

PAIRS = [("RAE", "N-RAE"), ("RDAE", "N-RDAE")]


def run(dataset):
    out = {}
    for robust, plain in PAIRS:
        out[robust] = mean_scores(robust, dataset)
        out[plain] = mean_scores(plain, dataset)
    return out


@pytest.mark.benchmark(group="fig09")
def test_robust_vs_nonrobust(benchmark):
    dataset = load_dataset("SYN", seed=3, scale=0.15, outlier_ratio=0.10,
                           num_series=3)
    results = benchmark.pedantic(run, args=(dataset,), rounds=1, iterations=1)
    print()
    print("Fig. 9 — Robustness (SYN, phi=10%%): method  PR  ROC")
    for name, (pr, roc) in results.items():
        print("  %-7s %.3f  %.3f" % (name, pr, roc))
    for robust, plain in PAIRS:
        robust_roc = results[robust][1]
        plain_roc = results[plain][1]
        assert robust_roc >= plain_roc - 0.05, (
            "%s (%.3f) fell behind %s (%.3f)"
            % (robust, robust_roc, plain, plain_roc)
        )
