"""Streaming latency: incremental scoring must beat full re-scoring.

The production claim of the streaming subsystem: scoring a new arrival with
:class:`repro.stream.StreamScorer` costs work bounded by the sliding window,
while the naive deployment (re-run ``score_new`` on the full history per
arrival) grows with the stream.  On a 10k-point series the incremental path
must be at least 5x faster per new point.  A second check makes the same
comparison for the lagged-matrix substrate: appending a column to a
:class:`repro.tsops.SlidingLagged` vs re-embedding the whole series.  A
third bounds the *window* term too: receptive-field-limited tail forwards
make a push O(receptive field) instead of O(window) — at window 2048 a
conv-RAE push must be at least 5x faster than a full window re-forward,
with bit-identical scores.

``REPRO_BENCH_TINY=1`` shrinks every size so CI smoke runs can exercise
the measured paths end-to-end in seconds; the wall-clock ratio assertions
are skipped in tiny mode (the bit-identity assertions are not).
"""

import os
import time

import numpy as np

from repro.core import RAE, ScoringSession
from repro.stream import StreamScorer
from repro.tsops import SlidingLagged, embed_lagged

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"
LENGTH = 1_500 if TINY else 10_000
WINDOW = 64 if TINY else 128
TAIL_WINDOW = 256 if TINY else 2048


def make_series(seed, length=LENGTH):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return (np.sin(2 * np.pi * t / 50)
            + 0.1 * rng.standard_normal(length))[:, None]


def test_incremental_scoring_beats_full_rescoring():
    series = make_series(0)
    # Paper-sized architecture: the forward cost scales with series length,
    # which is exactly what the naive per-arrival re-scoring pays for.
    detector = RAE(max_iterations=6, kernels=32, num_layers=4).fit(series[:500])

    arrivals = 15
    history, live = series[:-arrivals], series[-arrivals:]

    # Naive deployment: every arrival re-scores the entire history.
    naive_seconds = []
    grown = history.copy()
    for point in live:
        grown = np.vstack([grown, point[None]])
        started = time.perf_counter()
        naive_scores = detector.score_new(grown)
        naive_seconds.append(time.perf_counter() - started)
    assert np.isfinite(naive_scores).all()

    # Incremental deployment: bounded window per arrival.
    scorer = StreamScorer(detector, window=WINDOW)
    scorer.seed(history)
    incremental_seconds = []
    incremental_scores = []
    for point in live:
        started = time.perf_counter()
        incremental_scores.append(scorer.push(point))
        incremental_seconds.append(time.perf_counter() - started)
    assert np.isfinite(incremental_scores).all()

    naive = float(np.median(naive_seconds))
    incremental = float(np.median(incremental_seconds))
    speedup = naive / max(incremental, 1e-12)
    print("\nper-arrival latency on a %d-point series: naive %.2f ms, "
          "incremental %.2f ms (%.1fx)"
          % (LENGTH, 1e3 * naive, 1e3 * incremental, speedup))
    if not TINY:
        assert speedup >= 5.0, (
            "incremental scoring only %.1fx faster than full re-scoring"
            % speedup
        )


def test_incremental_hankel_beats_reembedding():
    series = make_series(1)
    window = 64

    started = time.perf_counter()
    sliding = SlidingLagged(window, 1, max_columns=LENGTH - window + 1)
    sliding.rebuild(series[:-50])
    appends = []
    for row in series[-50:]:
        t0 = time.perf_counter()
        sliding.append(row)
        appends.append(time.perf_counter() - t0)
    del started

    reembeds = []
    for __ in range(5):
        t0 = time.perf_counter()
        full = embed_lagged(series, window)
        reembeds.append(time.perf_counter() - t0)

    assert np.allclose(sliding.matrix, full)
    speedup = float(np.median(reembeds)) / max(float(np.median(appends)), 1e-12)
    print("\nlagged-matrix update: re-embed %.3f ms, append %.4f ms (%.0fx)"
          % (1e3 * np.median(reembeds), 1e3 * np.median(appends), speedup))
    if not TINY:
        assert speedup >= 5.0


def test_tail_forward_push_beats_full_reforward():
    """Receptive-field-bounded pushes: O(receptive field), not O(window).

    Two sessions serve the same fitted conv RAE over the same window-2048
    stream: one with tail forwards (the default), one forced to re-forward
    the full window per push (``tail_forward=False`` — the pre-tail
    behaviour).  The tail path must be >= 5x faster per push *and*
    bit-identical, including the full window vector after the run.
    """
    window = TAIL_WINDOW
    series = make_series(2, length=window + 400)
    detector = RAE(max_iterations=3 if TINY else 6, kernels=32,
                   num_layers=3).fit(series[:400])
    assert detector.tail_context() is not None

    arrivals = 20 if TINY else 60
    history, live = series[:-arrivals], series[-arrivals:]
    tail = ScoringSession(detector, window=window).seed(history)
    full = ScoringSession(detector, window=window,
                          tail_forward=False).seed(history)
    assert tail.tail_supported and not full.tail_supported

    tail_seconds, full_seconds = [], []
    tail_scores, full_scores = [], []
    for point in live:
        started = time.perf_counter()
        tail_scores.append(tail.push(point))
        tail_seconds.append(time.perf_counter() - started)
        started = time.perf_counter()
        full_scores.append(full.push(point))
        full_seconds.append(time.perf_counter() - started)

    # Tail forwards reorganise *what gets forwarded*, never the arithmetic:
    # push scores and the final window vector must match bit for bit.
    assert np.array_equal(tail_scores, full_scores)
    assert np.array_equal(tail.scores(), full.scores())

    tail_ms = 1e3 * float(np.median(tail_seconds))
    full_ms = 1e3 * float(np.median(full_seconds))
    speedup = full_ms / max(tail_ms, 1e-9)
    print("\npush latency at window %d: full re-forward %.2f ms, "
          "tail forward %.2f ms (%.1fx, tail_context=%d)"
          % (window, full_ms, tail_ms, speedup, detector.tail_context()))
    if not TINY:
        assert speedup >= 5.0, (
            "tail forward only %.1fx faster than full re-forward" % speedup
        )
