"""Fig. 12: effect of the outlier ratio phi on SYN.

Paper shape: RAE and RDAE maintain accuracy as contamination grows from 1%%
to 25%%, while the plain autoencoder baselines (CNNAE, RNNAE, DONUT, OMNI)
degrade quickly — the robustness headline of the paper.
"""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.eval import render_sweep

from conftest import mean_scores

# Heavy sweep: excluded from tier-1 (`-m "not slow"` is the default);
# run with `pytest -m slow` or `pytest -m ""`.
pytestmark = pytest.mark.slow

RATIOS = [0.01, 0.05, 0.10, 0.25]
METHODS = ["RAE", "RDAE", "CNNAE", "RNNAE", "DONUT", "OMNI"]

# The plain AEs must be trained long enough to actually absorb the training
# outliers (the failure mode Fig. 12 demonstrates); the fast-suite epoch
# counts would leave them underfitted and mask the effect.
EXTRA = {
    "CNNAE": {"epochs": 30},
    "RNNAE": {"epochs": 10},
    "DONUT": {"epochs": 25},
    "OMNI": {"epochs": 8},
}


def sweep():
    pr = {m: {} for m in METHODS}
    roc = {m: {} for m in METHODS}
    for ratio in RATIOS:
        dataset = load_dataset(
            "SYN", seed=1, scale=0.15, outlier_ratio=ratio, num_series=3
        )
        for method in METHODS:
            pr[method][ratio], roc[method][ratio] = mean_scores(
                method, dataset, **EXTRA.get(method, {})
            )
    return pr, roc


@pytest.mark.benchmark(group="fig12")
def test_outlier_ratio_sweep(benchmark):
    pr, roc = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_sweep(pr, "phi", title="Fig. 12a — PR vs outlier ratio (SYN)"))
    print(render_sweep(roc, "phi", title="Fig. 12b — ROC vs outlier ratio (SYN)"))

    def degradation(curve):
        return curve[RATIOS[0]] - curve[RATIOS[-1]]

    robust_drop = np.mean([degradation(roc["RAE"]), degradation(roc["RDAE"])])
    plain_drop = np.mean(
        [degradation(roc[m]) for m in ("CNNAE", "RNNAE", "DONUT", "OMNI")]
    )
    print("mean ROC drop 1%% -> 25%%: robust %.3f, plain AEs %.3f"
          % (robust_drop, plain_drop))
    # Paper shape: the robust methods lose no more accuracy than the plain
    # AEs as contamination grows (tolerance for scaled-substrate noise).
    assert robust_drop <= plain_drop + 0.1, (
        "robust methods degraded faster than plain AEs: %.3f vs %.3f"
        % (robust_drop, plain_drop)
    )
