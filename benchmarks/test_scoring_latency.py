"""Section V-B testing-runtime claim: scoring is fast enough for streaming.

The paper reports testing runtimes under 0.1 s for all methods, "making
them applicable to online outlier detection in streaming settings".  This
benchmark measures the train-once / score-new path (``score_new``) of RAE
and RDAE on an unseen series.
"""

import numpy as np
import pytest

from repro.eval import make_detector


def make_series(seed, length=280):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return (np.sin(2 * np.pi * t / 40)
            + 0.1 * rng.standard_normal(length))[:, None]


@pytest.mark.benchmark(group="latency")
def test_rae_streaming_latency(benchmark):
    det = make_detector("RAE", max_iterations=10).fit(make_series(0))
    unseen = make_series(1)
    scores = benchmark(det.score_new, unseen)
    assert scores.shape == (len(unseen),)
    # The paper's streaming-applicability bound.
    assert benchmark.stats.stats.mean < 0.1


@pytest.mark.benchmark(group="latency")
def test_rdae_streaming_latency(benchmark):
    det = make_detector(
        "RDAE", window=30, max_outer=1, inner_iterations=3, series_iterations=3
    ).fit(make_series(2))
    unseen = make_series(3)
    scores = benchmark(det.score_new, unseen)
    assert scores.shape == (len(unseen),)
    assert benchmark.stats.stats.mean < 0.1
