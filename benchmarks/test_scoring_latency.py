"""Section V-B testing-runtime claim: scoring is fast enough for streaming.

The paper reports testing runtimes under 0.1 s for all methods, "making
them applicable to online outlier detection in streaming settings".  This
benchmark measures the train-once / score-new path (``score_new``) of RAE
and RDAE on an unseen series, plus the compiled batched-inference path:
S same-spec sessions refreshed through one stacked program replay
(:class:`repro.core.InferencePrograms`) vs S eager forwards, recorded to
``bench-results/scoring_latency.json``.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.eval import make_detector

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

RESULTS_DIR = os.environ.get("REPRO_BENCH_DIR", "bench-results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "scoring_latency.json")


def _record_result(key, payload, skipped_reason=None):
    """Merge one benchmark's raw numbers into the trajectory JSON."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            data = json.load(handle)
    payload = dict(payload, tiny=TINY, cpu_count=os.cpu_count())
    if skipped_reason is not None:
        payload.pop("speedup", None)
        payload["skipped_reason"] = skipped_reason
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


def make_series(seed, length=280):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return (np.sin(2 * np.pi * t / 40)
            + 0.1 * rng.standard_normal(length))[:, None]


@pytest.mark.benchmark(group="latency")
def test_rae_streaming_latency(benchmark):
    det = make_detector("RAE", max_iterations=10).fit(make_series(0))
    unseen = make_series(1)
    scores = benchmark(det.score_new, unseen)
    assert scores.shape == (len(unseen),)
    # The paper's streaming-applicability bound.
    assert benchmark.stats.stats.mean < 0.1


@pytest.mark.benchmark(group="latency")
def test_rdae_streaming_latency(benchmark):
    det = make_detector(
        "RDAE", window=30, max_outer=1, inner_iterations=3, series_iterations=3
    ).fit(make_series(2))
    unseen = make_series(3)
    scores = benchmark(det.score_new, unseen)
    assert scores.shape == (len(unseen),)
    assert benchmark.stats.stats.mean < 0.1


@pytest.mark.slow
def test_batched_inference_beats_eager_session_refresh():
    """Core-layer half of the ``compiled_drain`` serving benchmark: S
    same-spec sessions refreshed via :func:`batched_session_scores` with a
    compiled program cache vs without, no router around them.  Records the
    per-refresh latencies and speedup; asserts >= 2x outside tiny mode.
    Bit-equality between the two paths is asserted unconditionally.
    """
    from repro.core import InferencePrograms, batched_session_scores
    from repro.core.scoring import ScoringSession

    sessions_count = 4 if TINY else 8
    window = 48 if TINY else 128
    rounds = 5 if TINY else 40
    chunk_rows = 8
    detectors = [
        make_detector("RAE", max_iterations=2 if TINY else 4, seed=i).fit(
            make_series(i, length=300)
        )
        for i in range(sessions_count)
    ]
    histories = [make_series(10 + i, window) for i in range(sessions_count)]
    live = [make_series(50 + i, rounds * chunk_rows)
            for i in range(sessions_count)]

    def refresh_loop(programs):
        sessions = [
            ScoringSession(det, window=window, programs=programs)
            for det in detectors
        ]
        for session, history in zip(sessions, histories):
            session.ingest(history)
            session.scores()
        tails, seconds = [], []
        for round_ in range(rounds):
            lo = round_ * chunk_rows
            for session, feed in zip(sessions, live):
                session.ingest(feed[lo:lo + chunk_rows])
            started = time.perf_counter()
            scored = batched_session_scores(
                sessions, tail=[chunk_rows] * sessions_count,
                programs=programs,
            )
            seconds.append(time.perf_counter() - started)
            tails.append([s.copy() for s in scored])
        return tails, seconds

    eager_tails, eager_seconds = refresh_loop(None)
    compiled_tails, compiled_seconds = refresh_loop(InferencePrograms())

    for eager_round, compiled_round in zip(eager_tails, compiled_tails):
        for a, b in zip(eager_round, compiled_round):
            assert np.array_equal(a, b)

    eager = float(np.median(eager_seconds))
    compiled = float(np.median(compiled_seconds))
    speedup = eager / max(compiled, 1e-12)
    print("\nper-refresh latency over %d same-spec sessions (window=%d): "
          "eager %.2f ms, compiled %.2f ms (%.1fx)"
          % (sessions_count, window, 1e3 * eager, 1e3 * compiled, speedup))
    reason = ("tiny mode: sizes too small for a meaningful ratio"
              if TINY else None)
    _record_result("batched_inference", {
        "sessions": sessions_count, "window": window, "rounds": rounds,
        "eager_ms": 1e3 * eager, "compiled_ms": 1e3 * compiled,
        "speedup": speedup,
    }, skipped_reason=reason)
    if reason is not None:
        pytest.skip(reason + " (equality asserted above)")
    assert speedup >= 2.0, (
        "batched inference only %.1fx faster than eager refresh" % speedup
    )
