"""Serve throughput: batched drains must beat per-stream sequential push.

The production claim of :mod:`repro.serve`: when many streams share one
fitted detector, draining a burst through :class:`StreamRouter` pays ~one
grouped forward pass per drain, while the naive deployment (a dedicated
:class:`StreamScorer` per stream, pushed sequentially) pays one forward per
stream per arrival.  With 8 RAE shards the batched drain must be at least
2x faster per round of arrivals — and numerically identical to the
sequential path.  A second bench covers the orthogonal axis: shards with
*independent* detectors cannot share a grouped forward, so the threaded
drain backend scores their shard groups concurrently and must beat the
serial backend by >= 1.5x on a multi-core host (bit-identically), and the
process backend — true CPU parallelism, no GIL — by >= 1.8x with two
workers.

``REPRO_BENCH_TINY=1`` shrinks sizes for CI smoke runs and skips the
wall-clock ratio assertions (never the equality assertions).  Raw numbers
land in ``bench-results/serve_throughput.json``; a host where a ratio is
not meaningful (single core, tiny mode) records ``skipped_reason`` and no
``speedup`` — a sub-1x "speedup" measured where nothing could overlap must
not enter the BENCH trajectory looking like a regression.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core import RAE
from repro.serve import StreamRouter
from repro.stream import StreamScorer

# A wall-clock ratio assertion has no place in tier-1 (pytest.ini promises
# fast *and deterministic*); run with `pytest -m slow`.
pytestmark = pytest.mark.slow

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"
SHARDS = 8
WINDOW = 48 if TINY else 128
ROUNDS = 10 if TINY else 40

RESULTS_DIR = os.environ.get("REPRO_BENCH_DIR", "bench-results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "serve_throughput.json")


def _record_result(key, payload, skipped_reason=None):
    """Merge one benchmark's raw numbers into the trajectory JSON."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            data = json.load(handle)
    payload = dict(payload, tiny=TINY, cpu_count=os.cpu_count())
    if skipped_reason is not None:
        payload.pop("speedup", None)
        payload["skipped_reason"] = skipped_reason
    data[key] = payload
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


def make_series(seed, length):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return (np.sin(2 * np.pi * t / 50)
            + 0.1 * rng.standard_normal(length))[:, None]


def test_batched_drain_beats_sequential_push():
    detector = RAE(max_iterations=3 if TINY else 6, kernels=32,
                   num_layers=4).fit(make_series(0, 500))
    histories = [make_series(10 + i, WINDOW) for i in range(SHARDS)]
    live = [make_series(50 + i, ROUNDS) for i in range(SHARDS)]

    # Naive fleet: one dedicated scorer per stream, pushed sequentially —
    # every arrival pays its own full forward pass over the window.
    scorers = [StreamScorer(detector, window=WINDOW).seed(histories[i])
               for i in range(SHARDS)]
    sequential_scores = np.zeros((SHARDS, ROUNDS))
    sequential_seconds = []
    for round_ in range(ROUNDS):
        started = time.perf_counter()
        for shard in range(SHARDS):
            sequential_scores[shard, round_] = scorers[shard].push(
                live[shard][round_]
            )
        sequential_seconds.append(time.perf_counter() - started)

    # Sharded serving: the same arrivals through one router; each drain
    # refreshes all same-shape shards with one grouped forward pass.
    router = StreamRouter(detector, window=WINDOW, batch_size=SHARDS)
    for shard in range(SHARDS):
        router.add_stream(shard).seed(histories[shard])
    routed_scores = np.zeros((SHARDS, ROUNDS))
    routed_seconds = []
    for round_ in range(ROUNDS):
        started = time.perf_counter()
        for shard in range(SHARDS):
            router.submit(shard, live[shard][round_])
        results = router.drain()
        routed_seconds.append(time.perf_counter() - started)
        for shard in range(SHARDS):
            routed_scores[shard, round_] = results[shard][0]

    # Batching reorganises *when* forwards run, never what they compute.
    assert np.allclose(routed_scores, sequential_scores)

    sequential = float(np.median(sequential_seconds))
    routed = float(np.median(routed_seconds))
    speedup = sequential / max(routed, 1e-12)
    print("\nper-round latency over %d shards (window=%d): sequential "
          "%.2f ms, batched drain %.2f ms (%.1fx)"
          % (SHARDS, WINDOW, 1e3 * sequential, 1e3 * routed, speedup))
    _record_result("batched_drain", {
        "shards": SHARDS, "window": WINDOW, "rounds": ROUNDS,
        "sequential_ms": 1e3 * sequential, "routed_ms": 1e3 * routed,
        "speedup": speedup,
    }, skipped_reason=("tiny mode: sizes too small for a meaningful ratio"
                       if TINY else None))
    if not TINY:
        assert speedup >= 2.0, (
            "batched drain only %.1fx faster than sequential push" % speedup
        )


def _independent_shard_fixture():
    """8 shards, each with its own *different-spec* detector, plus arrivals.

    Different architectures are the worst case for grouped forwards
    (nothing batches or stacks across shards — distinct same-spec
    detectors would now share one fingerprint group and a stacked compiled
    forward, see ``compiled_drain``) and the best case for the threaded
    backend (every shard group is parallel work).
    """
    detectors = [
        RAE(max_iterations=2 if TINY else 4, kernels=12 + i, num_layers=3,
            seed=i).fit(make_series(i, 400))
        for i in range(SHARDS)
    ]
    histories = [make_series(10 + i, WINDOW) for i in range(SHARDS)]
    live = [make_series(50 + i, ROUNDS) for i in range(SHARDS)]
    return detectors, histories, live


def _run_router(router, detectors, histories, live):
    """Feed the fixture through a router; returns (scores, drain times)."""
    for shard in range(SHARDS):
        router.add_stream(shard, detector=detectors[shard]).seed(
            histories[shard]
        )
    scores = np.zeros((SHARDS, ROUNDS))
    seconds = []
    for round_ in range(ROUNDS):
        for shard in range(SHARDS):
            router.submit(shard, live[shard][round_])
        started = time.perf_counter()
        results = router.drain()
        seconds.append(time.perf_counter() - started)
        for shard in range(SHARDS):
            scores[shard, round_] = results[shard][0]
    router.close()
    return scores, seconds


def test_threaded_drain_beats_serial_on_independent_shards():
    """The threaded backend's claim: >= 1.5x on independent-detector shards.

    Skipped on single-core hosts — the backend parallelises CPU work, and
    a 1-core box has nothing to overlap (correctness of the threaded path
    is covered machine-independently in tests/serve/test_router.py).
    """
    detectors, histories, live = _independent_shard_fixture()

    serial_scores, serial_seconds = _run_router(
        StreamRouter(window=WINDOW), detectors, histories, live
    )
    threaded_scores, threaded_seconds = _run_router(
        StreamRouter(window=WINDOW, drain_backend="threaded", workers=4),
        detectors, histories, live,
    )

    # The backend changes where forwards run, never what they compute.
    assert np.array_equal(threaded_scores, serial_scores)

    serial = float(np.median(serial_seconds))
    threaded = float(np.median(threaded_seconds))
    speedup = serial / max(threaded, 1e-12)
    cores = os.cpu_count() or 1
    print("\nper-round drain over %d independent-detector shards "
          "(window=%d, %d cores): serial %.2f ms, threaded %.2f ms (%.1fx)"
          % (SHARDS, WINDOW, cores, 1e3 * serial, 1e3 * threaded, speedup))
    reason = _ratio_skip_reason(cores)
    _record_result("threaded_drain", {
        "shards": SHARDS, "window": WINDOW, "workers": 4,
        "serial_ms": 1e3 * serial, "threaded_ms": 1e3 * threaded,
        "speedup": speedup,
    }, skipped_reason=reason)
    if reason is not None:
        pytest.skip(reason + " (equality asserted above)")
    assert speedup >= 1.5, (
        "threaded drain only %.1fx faster than serial" % speedup
    )


def _ratio_skip_reason(cores):
    if TINY:
        return "tiny mode: sizes too small for a meaningful ratio"
    if cores < 2:
        return ("single-core host: backend parallelism has nothing to "
                "overlap, ratio not meaningful")
    return None


def test_compiled_drain_beats_eager_on_same_spec_shards():
    """The compiled inference path's claim: >= 2x on same-spec shards.

    8 streams, each holding its OWN fitted detector of one spec — the PR 9
    eager path grouped drains by ``id(detector)`` and paid 8 separate
    graph-building forwards per drain; the fingerprint re-key plus the
    stacked-weight program replays the whole group as one compiled batched
    forward.  The speedup is algorithmic (graph-build overhead and
    per-forward dispatch vs one buffered replay), not parallelism, so no
    multi-core skip: only tiny mode skips the ratio.  Scores must be
    bit-identical to the eager drain.
    """
    from repro.nn import tape as nntape

    detectors = [
        RAE(max_iterations=2 if TINY else 4, kernels=16, num_layers=3,
            seed=i).fit(make_series(i, 400))
        for i in range(SHARDS)
    ]
    histories = [make_series(10 + i, WINDOW) for i in range(SHARDS)]
    live = [make_series(50 + i, ROUNDS) for i in range(SHARDS)]

    previous = nntape.set_tape_enabled(False)
    try:
        eager_scores, eager_seconds = _run_router(
            StreamRouter(window=WINDOW, batch_size=SHARDS),
            detectors, histories, live,
        )
    finally:
        nntape.set_tape_enabled(previous)
    nntape.set_tape_enabled(True)
    try:
        compiled_router = StreamRouter(window=WINDOW, batch_size=SHARDS)
        compiled_scores, compiled_seconds = _run_router(
            compiled_router, detectors, histories, live,
        )
    finally:
        nntape.set_tape_enabled(previous)

    # The compiled path changes how forwards run, never what they compute.
    assert np.array_equal(compiled_scores, eager_scores)

    eager = float(np.median(eager_seconds))
    compiled = float(np.median(compiled_seconds))
    speedup = eager / max(compiled, 1e-12)
    print("\nper-round drain over %d same-spec shards (window=%d): eager "
          "%.2f ms, compiled %.2f ms (%.1fx)"
          % (SHARDS, WINDOW, 1e3 * eager, 1e3 * compiled, speedup))
    reason = ("tiny mode: sizes too small for a meaningful ratio"
              if TINY else None)
    _record_result("compiled_drain", {
        "shards": SHARDS, "window": WINDOW, "rounds": ROUNDS,
        "eager_ms": 1e3 * eager, "compiled_ms": 1e3 * compiled,
        "speedup": speedup,
    }, skipped_reason=reason)
    if reason is not None:
        pytest.skip(reason + " (equality asserted above)")
    assert speedup >= 2.0, (
        "compiled drain only %.1fx faster than the eager path" % speedup
    )


def test_process_drain_beats_serial_on_independent_shards():
    """The process backend's claim: >= 1.8x with 2 workers on >= 2 cores.

    The equality half runs everywhere — a single-core host exercises the
    full protocol (state shipping, mmap'd weight store, result splicing)
    with two live worker processes; only the wall-clock ratio needs real
    cores to overlap on.
    """
    detectors, histories, live = _independent_shard_fixture()

    serial_scores, serial_seconds = _run_router(
        StreamRouter(window=WINDOW), detectors, histories, live
    )
    process_scores, process_seconds = _run_router(
        StreamRouter(window=WINDOW, drain_backend="process", workers=2),
        detectors, histories, live,
    )

    # The backend changes where forwards run, never what they compute.
    assert np.array_equal(process_scores, serial_scores)

    serial = float(np.median(serial_seconds))
    process = float(np.median(process_seconds))
    speedup = serial / max(process, 1e-12)
    cores = os.cpu_count() or 1
    print("\nper-round drain over %d independent-detector shards "
          "(window=%d, %d cores): serial %.2f ms, process(2) %.2f ms (%.1fx)"
          % (SHARDS, WINDOW, cores, 1e3 * serial, 1e3 * process, speedup))
    reason = _ratio_skip_reason(cores)
    _record_result("process_drain", {
        "shards": SHARDS, "window": WINDOW, "workers": 2,
        "serial_ms": 1e3 * serial, "process_ms": 1e3 * process,
        "speedup": speedup,
    }, skipped_reason=reason)
    if reason is not None:
        pytest.skip(reason + " (equality asserted above)")
    assert speedup >= 1.8, (
        "process drain only %.1fx faster than serial with 2 workers"
        % speedup
    )
