"""Serve throughput: batched drains must beat per-stream sequential push.

The production claim of :mod:`repro.serve`: when many streams share one
fitted detector, draining a burst through :class:`StreamRouter` pays ~one
grouped forward pass per drain, while the naive deployment (a dedicated
:class:`StreamScorer` per stream, pushed sequentially) pays one forward per
stream per arrival.  With 8 RAE shards the batched drain must be at least
2x faster per round of arrivals — and numerically identical to the
sequential path.
"""

import time

import numpy as np
import pytest

from repro.core import RAE
from repro.serve import StreamRouter
from repro.stream import StreamScorer

# A wall-clock ratio assertion has no place in tier-1 (pytest.ini promises
# fast *and deterministic*); run with `pytest -m slow`.
pytestmark = pytest.mark.slow

SHARDS = 8
WINDOW = 128
ROUNDS = 40


def make_series(seed, length):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return (np.sin(2 * np.pi * t / 50)
            + 0.1 * rng.standard_normal(length))[:, None]


def test_batched_drain_beats_sequential_push():
    detector = RAE(max_iterations=6, kernels=32, num_layers=4).fit(
        make_series(0, 500)
    )
    histories = [make_series(10 + i, WINDOW) for i in range(SHARDS)]
    live = [make_series(50 + i, ROUNDS) for i in range(SHARDS)]

    # Naive fleet: one dedicated scorer per stream, pushed sequentially —
    # every arrival pays its own full forward pass over the window.
    scorers = [StreamScorer(detector, window=WINDOW).seed(histories[i])
               for i in range(SHARDS)]
    sequential_scores = np.zeros((SHARDS, ROUNDS))
    sequential_seconds = []
    for round_ in range(ROUNDS):
        started = time.perf_counter()
        for shard in range(SHARDS):
            sequential_scores[shard, round_] = scorers[shard].push(
                live[shard][round_]
            )
        sequential_seconds.append(time.perf_counter() - started)

    # Sharded serving: the same arrivals through one router; each drain
    # refreshes all same-shape shards with one grouped forward pass.
    router = StreamRouter(detector, window=WINDOW, batch_size=SHARDS)
    for shard in range(SHARDS):
        router.add_stream(shard).seed(histories[shard])
    routed_scores = np.zeros((SHARDS, ROUNDS))
    routed_seconds = []
    for round_ in range(ROUNDS):
        started = time.perf_counter()
        for shard in range(SHARDS):
            router.submit(shard, live[shard][round_])
        results = router.drain()
        routed_seconds.append(time.perf_counter() - started)
        for shard in range(SHARDS):
            routed_scores[shard, round_] = results[shard][0]

    # Batching reorganises *when* forwards run, never what they compute.
    assert np.allclose(routed_scores, sequential_scores)

    sequential = float(np.median(sequential_seconds))
    routed = float(np.median(routed_seconds))
    speedup = sequential / max(routed, 1e-12)
    print("\nper-round latency over %d shards (window=%d): sequential "
          "%.2f ms, batched drain %.2f ms (%.1fx)"
          % (SHARDS, WINDOW, 1e3 * sequential, 1e3 * routed, speedup))
    assert speedup >= 2.0, (
        "batched drain only %.1fx faster than sequential push" % speedup
    )
